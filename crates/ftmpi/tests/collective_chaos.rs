//! Chaos property: collectives under arbitrary kill schedules
//! **error, never hang** — the hang-freedom argument of the
//! `collective` module, tested mechanically.
//!
//! Every rank runs the same sequence of collectives, tolerating
//! per-operation errors (which keeps instance counters aligned: entry
//! happens even when the operation errors). After the sequence,
//! survivors repair with `validate_all` and must complete one final
//! barrier successfully.

use std::time::Duration;

use proptest::prelude::*;

use faultsim::{FaultPlan, FaultRule, HookKind, Trigger};
use ftmpi::{run, Error, ErrorHandler, UniverseConfig, WORLD};

#[derive(Debug, Clone, Copy)]
enum Op {
    Barrier,
    Bcast,
    BcastLinear,
    Reduce,
    ReduceLinear,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Scan,
}

const OPS: [Op; 11] = [
    Op::Barrier,
    Op::Bcast,
    Op::BcastLinear,
    Op::Reduce,
    Op::ReduceLinear,
    Op::Allreduce,
    Op::Gather,
    Op::Scatter,
    Op::Allgather,
    Op::Alltoall,
    Op::Scan,
];

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..OPS.len()).prop_map(|i| OPS[i])
}

#[derive(Debug, Clone, Copy)]
struct Kill {
    victim: usize,
    kind: u8,
    occurrence: u64,
}

fn kill_strategy() -> impl Strategy<Value = Kill> {
    (0usize..7, 0u8..5, 1u64..10).prop_map(|(victim, kind, occurrence)| Kill {
        victim,
        kind,
        occurrence,
    })
}

fn run_op(p: &mut ftmpi::Process, op: Op) -> ftmpi::Result<()> {
    // Use a value derived from rank so payloads exercise real data.
    let me = p.world_rank();
    let active = p
        .comm_group(WORLD)?
        .members()
        .iter()
        .filter(|&&w| {
            p.comm_validate_rank(WORLD, w)
                .map(|i| i.state != ftmpi::RankState::Null)
                .unwrap_or(false)
        })
        .count();
    let result: ftmpi::Result<()> = match op {
        Op::Barrier => p.barrier(WORLD),
        Op::Bcast => {
            let v = (me == 0).then_some(7i64);
            p.bcast(WORLD, 0, v.as_ref()).map(|_| ())
        }
        Op::BcastLinear => {
            let v = (me == 0).then_some(9i64);
            p.bcast_linear(WORLD, 0, v.as_ref()).map(|_| ())
        }
        Op::Reduce => p.reduce(WORLD, 0, &(me as u64), |a, b| a + b).map(|_| ()),
        Op::ReduceLinear => {
            p.reduce_linear(WORLD, 0, &(me as u64), |a, b| a.max(b)).map(|_| ())
        }
        Op::Allreduce => p.allreduce(WORLD, &1u64, |a, b| a + b).map(|_| ()),
        Op::Gather => p.gather(WORLD, 0, &(me as u32)).map(|_| ()),
        Op::Scatter => {
            let values: Option<Vec<u64>> = (me == 0).then(|| (0..active as u64).collect());
            p.scatter(WORLD, 0, values.as_deref()).map(|_| ())
        }
        Op::Allgather => p.allgather(WORLD, &(me as u16)).map(|_| ()),
        Op::Alltoall => {
            let values: Vec<u32> = (0..active as u32).collect();
            p.alltoall(WORLD, &values).map(|_| ())
        }
        Op::Scan => p.scan(WORLD, &1i64, |a, b| a + b).map(|_| ()),
    };
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.is_terminal() => Err(e),
        // Per-op failure is expected under chaos; alignment is kept by
        // coll_begin's unconditional instance bump.
        Err(Error::RankFailStop { .. }) | Err(Error::InvalidState(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        max_shrink_iters: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn collectives_error_but_never_hang_under_chaos(
        world in 3usize..8,
        ops in prop::collection::vec(op_strategy(), 2..6),
        kills in prop::collection::vec(kill_strategy(), 0..3),
    ) {
        let kills: Vec<Kill> = kills.into_iter().filter(|k| k.victim < world).collect();
        let victims: std::collections::HashSet<usize> =
            kills.iter().map(|k| k.victim).collect();
        prop_assume!(victims.len() < world); // at least one survivor

        let mut plan = FaultPlan::none();
        let mut seen = std::collections::HashSet::new();
        for k in &kills {
            if !seen.insert(k.victim) {
                continue;
            }
            let kind = match k.kind {
                0 => HookKind::BeforeCollective,
                1 => HookKind::AfterCollective,
                2 => HookKind::AfterRecvComplete,
                3 => HookKind::AfterSend,
                _ => HookKind::Tick,
            };
            plan = plan.with(FaultRule::kill(k.victim, Trigger::on(kind).nth(k.occurrence)));
        }

        let ops2 = ops.clone();
        let report = run(
            world,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(120)),
            move |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                for &op in &ops2 {
                    run_op(p, op)?;
                }
                // Repair and prove the communicator is usable again.
                // Kills can land at ANY wait point (Tick), including
                // after the repair — so retry in validate-bracketed
                // windows: `before == after` is a *uniform* predicate
                // (validate_all agrees), so every survivor exits the
                // loop in the same round with the same count.
                let mut rounds = 0;
                loop {
                    rounds += 1;
                    assert!(rounds < 50, "repair loop must converge");
                    let before = p.comm_validate_all(WORLD)?;
                    let r = p.barrier(WORLD);
                    let after = p.comm_validate_all(WORLD)?;
                    match r {
                        _ if before != after => continue,
                        Ok(()) => return Ok(before),
                        Err(e) if e.is_terminal() => return Err(e),
                        Err(Error::RankFailStop { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
            },
        );
        prop_assert!(
            !report.hung,
            "HANG with ops {ops:?} kills {kills:?}: outcomes have {} survivors",
            report.outcomes.iter().filter(|o| o.is_ok()).count()
        );
        // Survivors all finished and agree with EACH OTHER on the
        // failure count (uniform agreement). The common count may be
        // *below* the end-of-run count: a victim whose trigger fires
        // inside its own final wait can die after the last agreement,
        // legitimately unseen by anyone.
        let failed_count = report.outcomes.iter().filter(|o| o.is_failed()).count();
        let mut counts = std::collections::HashSet::new();
        for (r, o) in report.outcomes.iter().enumerate() {
            if o.is_failed() {
                continue;
            }
            let got = o.as_ok().unwrap_or_else(|| panic!("rank {r}: {o:?}"));
            counts.insert(*got);
        }
        prop_assert_eq!(counts.len(), 1, "survivors disagree: {:?}", counts);
        let agreed = *counts.iter().next().unwrap();
        prop_assert!(
            agreed <= failed_count,
            "agreed {} > actually failed {}",
            agreed,
            failed_count
        );
    }
}
