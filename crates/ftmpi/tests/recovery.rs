//! Recovery-extension tests: respawned incarnations, generation
//! reporting, and messaging across a recovery.
//!
//! The paper explicitly scopes recovery out ("Process recovery is not
//! addressed in this paper") but plumbs the `generation` field for it;
//! this extension implements the field's intended semantics for
//! point-to-point protocols. DESIGN.md documents the supported scope.

use std::time::Duration;

use faultsim::{FaultPlan, HookKind};
use ftmpi::{
    run, ErrorHandler, Event, RankState, RespawnPolicy, Src, UniverseConfig, WORLD,
};

fn policy() -> RespawnPolicy {
    RespawnPolicy { after: Duration::from_millis(5), max_per_rank: 1 }
}

#[test]
fn respawned_rank_reports_generation_one() {
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report = run(
        2,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(60))
            .respawning(policy()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                if p.generation() == 0 {
                    // First incarnation: dies at its first Tick.
                    let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                    let _ = p.wait(req)?;
                    unreachable!("killed by the tick");
                }
                // Second incarnation: answer rank 0.
                let (v, _) = p.recv::<i32>(WORLD, Src::Rank(0), 1)?;
                p.send(WORLD, 0, 2, &(v + 1))?;
                return Ok(p.generation() as i32);
            }
            // Rank 0: observe death, then recovery, then talk to the
            // new incarnation.
            while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                std::thread::yield_now();
            }
            while p.comm_validate_rank(WORLD, 1)?.state != RankState::Ok {
                std::thread::yield_now();
            }
            let info = p.comm_validate_rank(WORLD, 1)?;
            assert_eq!(info.generation, 1, "recovered incarnation is generation 1");
            assert_eq!(info.state, RankState::Ok);
            p.send(WORLD, 1, 1, &41i32)?;
            let (v, _) = p.recv::<i32>(WORLD, Src::Rank(1), 2)?;
            Ok(v)
        },
    );
    assert!(!report.hung);
    assert_eq!(report.outcomes[0].as_ok(), Some(&42));
    assert_eq!(report.outcomes[1].as_ok(), Some(&1), "final incarnation's outcome wins");
    assert_eq!(report.generations, vec![0, 1]);
    // The trace records the respawn.
    // (Tracing off by default; generations vector is the witness.)
}

#[test]
fn recognition_clears_for_the_new_incarnation() {
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report = run(
        2,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(60))
            .respawning(policy()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                if p.generation() == 0 {
                    let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                    let _ = p.wait(req)?;
                    unreachable!();
                }
                // New incarnation idles until rank 0 finishes its
                // checks, then receives the close message.
                let (_, _) = p.recv::<()>(WORLD, Src::Rank(0), 3)?;
                return Ok(());
            }
            // Observe death and RECOGNIZE it (Null).
            while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                std::thread::yield_now();
            }
            p.comm_validate_clear(WORLD, &[1])?;
            assert_eq!(p.comm_validate_rank(WORLD, 1)?.state, RankState::Null);
            // After the respawn, the rank is Ok again — the old
            // recognition applies to the dead incarnation only.
            while p.comm_validate_rank(WORLD, 1)?.state != RankState::Ok {
                std::thread::yield_now();
            }
            assert_eq!(p.comm_validate_rank(WORLD, 1)?.generation, 1);
            p.send(WORLD, 1, 3, &())?;
            Ok(())
        },
    );
    assert!(!report.hung);
    assert!(report.outcomes[0].is_ok(), "{:?}", report.outcomes[0]);
    assert!(report.outcomes[1].is_ok());
}

#[test]
fn messages_to_the_dead_incarnation_are_lost() {
    // Rank 0 sends to rank 1 while it is down (between death and
    // respawn the send errors; right after respawn the new incarnation
    // must NOT see pre-death messages).
    let plan = FaultPlan::none().kill_at(1, HookKind::AfterRecvComplete, 1);
    let report = run(
        2,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(60))
            .respawning(policy()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                if p.generation() == 0 {
                    // Receives the doomed message and dies on its
                    // completion hook; the SECOND message (sent before
                    // our death was visible) is lost with us.
                    let (_, _) = p.recv::<i32>(WORLD, Src::Rank(0), 1)?;
                    unreachable!();
                }
                // New incarnation: the only message we see is the
                // post-recovery one.
                let (v, _) = p.recv::<i32>(WORLD, Src::Rank(0), 1)?;
                assert_eq!(v, 3, "pre-death messages must not leak into the new incarnation");
                Ok(v)
            } else {
                p.send(WORLD, 1, 1, &1i32)?; // consumed by gen 0, kills it
                let _ = p.send(WORLD, 1, 1, &2i32); // racing the death: lost either way
                // Wait for recovery, then send the message that must
                // be the first thing generation 1 sees.
                while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                    std::thread::yield_now();
                }
                while p.comm_validate_rank(WORLD, 1)?.state != RankState::Ok {
                    std::thread::yield_now();
                }
                p.send(WORLD, 1, 1, &3i32)?;
                Ok(0)
            }
        },
    );
    assert!(!report.hung);
    assert_eq!(report.outcomes[1].as_ok(), Some(&3));
}

#[test]
fn respawn_budget_is_respected() {
    // Budget 1: the second death stays dead.
    let plan = FaultPlan::none()
        .kill_at(1, HookKind::Tick, 1)
        .kill_at(1, HookKind::Tick, 2); // fires on the respawned incarnation's 2nd tick... armed per-rule
    // NOTE: rules fire once each; the second rule kills the recovered
    // incarnation at its (global) second observed tick.
    let report = run(
        2,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(60))
            .respawning(policy()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?; // both incarnations die here
                return Ok(());
            }
            // Rank 0 simply waits for rank 1 to be permanently dead:
            // generation 1 AND failed.
            loop {
                let info = p.comm_validate_rank(WORLD, 1)?;
                if info.generation == 1 && info.state != RankState::Ok {
                    return Ok(());
                }
                std::thread::yield_now();
            }
        },
    );
    assert!(!report.hung);
    assert!(report.outcomes[0].is_ok());
    assert!(report.outcomes[1].is_failed(), "second death is final (budget 1)");
    assert_eq!(report.generations, vec![0, 1]);
}

#[test]
fn respawn_is_traced() {
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report = run(
        2,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(60))
            .respawning(policy())
            .traced(),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                if p.generation() == 0 {
                    let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                    let _ = p.wait(req)?;
                    unreachable!();
                }
                return Ok(());
            }
            while p.comm_validate_rank(WORLD, 1)?.generation == 0 {
                std::thread::yield_now();
            }
            Ok(())
        },
    );
    let respawns: Vec<_> = report
        .trace
        .iter()
        .filter(|te| matches!(te.event, Event::Respawned { rank: 1, generation: 1 }))
        .collect();
    assert_eq!(respawns.len(), 1);
}
