//! Runtime integration tests: the parts of the MPI-like surface the
//! ring does not exercise, plus failure semantics under asynchronous
//! (wall-clock) kills and randomized chaos.

use std::time::Duration;

use faultsim::{AsyncSchedule, FaultPlan, HookKind, RandomFaultsBuilder};
use ftmpi::{
    run, run_default, Error, ErrorHandler, Event, RankOutcome, RankState, Src, UniverseConfig,
    WORLD,
};

fn wd() -> Duration {
    Duration::from_secs(60)
}

#[test]
fn sendrecv_exchanges_around_a_ring() {
    let n = 5;
    let report = run_default(n, move |p| {
        let me = p.comm_rank(WORLD)?;
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let (v, st): (usize, _) = p.sendrecv(WORLD, right, 4, &me, Src::Rank(left), 4)?;
        assert_eq!(st.source, Some(left));
        Ok(v)
    });
    assert!(report.all_ok());
    for (r, o) in report.outcomes.iter().enumerate() {
        assert_eq!(*o.as_ok().unwrap(), (r + n - 1) % n);
    }
}

#[test]
fn waitall_collects_everything_in_order() {
    let report = run_default(3, |p| {
        if p.world_rank() == 0 {
            // Two messages from each peer, interleaved tags.
            let reqs = vec![
                p.irecv(WORLD, Src::Rank(1), 1)?,
                p.irecv(WORLD, Src::Rank(2), 1)?,
                p.irecv(WORLD, Src::Rank(1), 2)?,
                p.irecv(WORLD, Src::Rank(2), 2)?,
            ];
            let out = p.waitall(&reqs)?;
            let values: Vec<i32> = out
                .into_iter()
                .map(|r| i32::from_bytes(&r.expect("all succeed").data).unwrap())
                .collect();
            Ok(values)
        } else {
            let base = p.world_rank() as i32 * 10;
            p.send(WORLD, 0, 1, &(base + 1))?;
            p.send(WORLD, 0, 2, &(base + 2))?;
            Ok(vec![])
        }
    });
    assert!(report.all_ok());
    assert_eq!(report.outcomes[0].as_ok(), Some(&vec![11, 21, 12, 22]));
}

use ftmpi::Datatype;

#[test]
fn waitsome_returns_ready_subset() {
    let report = run_default(2, |p| {
        if p.world_rank() == 0 {
            let never = p.irecv(WORLD, Src::Rank(1), 9)?;
            let soon = p.irecv(WORLD, Src::Rank(1), 1)?;
            let ready = p.waitsome(&[never, soon])?;
            assert_eq!(ready.len(), 1);
            assert_eq!(ready[0].0, 1, "only the tag-1 receive is ready");
            let v = i32::from_bytes(&ready[0].1.as_ref().unwrap().data).unwrap();
            p.cancel(never)?;
            Ok(v)
        } else {
            p.send(WORLD, 0, 1, &77i32)?;
            Ok(0)
        }
    });
    assert!(report.all_ok());
    assert_eq!(report.outcomes[0].as_ok(), Some(&77));
}

#[test]
fn test_polls_without_blocking() {
    let report = run_default(2, |p| {
        if p.world_rank() == 0 {
            let req = p.irecv(WORLD, Src::Rank(1), 1)?;
            // Poll until complete; must never block.
            let mut polls = 0u64;
            let v = loop {
                if let Some(c) = p.test(req)? {
                    break i64::from_bytes(&c.data)?;
                }
                polls += 1;
                std::thread::yield_now();
                if polls > 10_000_000 {
                    panic!("test() never completed");
                }
            };
            Ok(v)
        } else {
            // Give rank 0 time to poll a few times.
            std::thread::sleep(Duration::from_millis(5));
            p.send(WORLD, 0, 1, &42i64)?;
            Ok(0)
        }
    });
    assert!(report.all_ok());
    assert_eq!(report.outcomes[0].as_ok(), Some(&42));
}

#[test]
fn iprobe_and_probe_report_without_consuming() {
    let report = run_default(2, |p| {
        if p.world_rank() == 0 {
            // Rank 1 sends only after our go-message, so nothing can
            // match yet — the None is deterministic, not a race win.
            assert!(p.iprobe(WORLD, Src::Any, 5)?.is_none());
            p.send(WORLD, 1, 0, &0u8)?;
            let st = p.probe(WORLD, Src::Rank(1), 5)?;
            assert_eq!(st.len, 8);
            // Probe again: still there.
            assert!(p.iprobe(WORLD, Src::Rank(1), 5)?.is_some());
            let (v, _) = p.recv::<u64>(WORLD, Src::Rank(1), 5)?;
            assert!(p.iprobe(WORLD, Src::Rank(1), 5)?.is_none());
            Ok(v)
        } else {
            let (_, _) = p.recv::<u8>(WORLD, Src::Rank(0), 0)?;
            p.send(WORLD, 0, 5, &99u64)?;
            Ok(0)
        }
    });
    assert!(report.all_ok());
    assert_eq!(report.outcomes[0].as_ok(), Some(&99));
}

#[test]
fn isend_completes_eagerly() {
    let report = run_default(2, |p| {
        if p.world_rank() == 0 {
            let req = p.isend(WORLD, 1, 3, &5u32)?;
            let c = p.wait(req)?;
            assert!(c.data.is_empty());
            Ok(0)
        } else {
            let (v, _) = p.recv::<u32>(WORLD, Src::Rank(0), 3)?;
            Ok(v)
        }
    });
    assert_eq!(report.outcomes[1].as_ok(), Some(&5));
}

#[test]
fn async_schedule_kills_at_wall_clock() {
    // Rank 1 is killed ~15 ms in, while blocked in a receive it would
    // otherwise hold forever; rank 0's detector receive fires.
    let schedule = AsyncSchedule::new().kill_after(1, Duration::from_millis(15));
    let report = run(
        2,
        UniverseConfig::default().scheduled(schedule).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            let req = p.irecv(WORLD, Src::Rank((p.world_rank() + 1) % 2), 1)?;
            match p.wait(req) {
                Err(Error::RankFailStop { rank }) => Ok(rank),
                Err(e) if e.is_terminal() => Err(e),
                other => panic!("unexpected: {other:?}"),
            }
        },
    );
    assert!(!report.hung);
    assert!(report.outcomes[1].is_failed());
    assert_eq!(report.outcomes[0].as_ok(), Some(&1));
}

#[test]
fn comm_split_excludes_async_killed_rank() {
    // Rank 2 dies before submitting to the split; the others complete
    // the split without it (shrink semantics).
    let plan = FaultPlan::none().kill_at(2, HookKind::Tick, 1);
    let report = run(
        3,
        UniverseConfig::with_plan(plan).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 2 {
                // Dies at the first Tick inside this wait.
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                return Ok(0);
            }
            let sub = p.comm_split(WORLD, Some(0), 0)?.expect("in color 0");
            Ok(p.comm_size(sub)?)
        },
    );
    assert!(!report.hung);
    assert_eq!(report.outcomes[0].as_ok(), Some(&2));
    assert_eq!(report.outcomes[1].as_ok(), Some(&2));
}

#[test]
fn dup_of_split_communicator_works() {
    let report = run_default(4, |p| {
        let color = (p.world_rank() / 2) as i64;
        let sub = p.comm_split(WORLD, Some(color), 0)?.expect("colored");
        let dup = p.comm_dup(sub)?;
        let peer = 1 - p.comm_rank(dup)?;
        let (v, _): (usize, _) = p.sendrecv(dup, peer, 1, &p.world_rank(), Src::Rank(peer), 1)?;
        // The peer shares my color block.
        assert_eq!(v / 2, p.world_rank() / 2);
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn trace_records_protocol_events() {
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report = run(
        2,
        UniverseConfig::with_plan(plan).watchdog(wd()).traced(),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                return Ok(());
            }
            // Wait for the failure, then trip a posted receive on it.
            while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                std::thread::yield_now();
            }
            let req = p.irecv(WORLD, Src::Rank(1), 1)?;
            let _ = p.wait(req);
            Ok(())
        },
    );
    let kills = report
        .trace
        .iter()
        .filter(|te| matches!(te.event, Event::Killed { rank: 1 }))
        .count();
    assert_eq!(kills, 1, "exactly one kill traced");
    let fires = report
        .trace
        .iter()
        .filter(|te| matches!(te.event, Event::RecvFailure { rank: 0, peer: 1 }))
        .count();
    assert!(fires >= 1, "the failure-detector completion must be traced");
}

#[test]
fn chaos_allreduce_with_validate_retry_runs_through() {
    // The generic run-through pattern: collectives in a retry loop
    // bracketed by validate_all, under seeded random fault plans.
    for seed in 0..6u64 {
        let plan = RandomFaultsBuilder::new(6)
            .max_failures(2)
            .spare(&[0])
            .max_occurrence(4)
            .kinds(&[HookKind::BeforeCollective, HookKind::Tick, HookKind::BeforeValidate])
            .build(seed)
            .next_plan();
        let victims = plan.victims();
        let report = run(
            6,
            UniverseConfig::with_plan(plan).watchdog(wd()),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                // Keep reducing until a round succeeds with no new
                // failures (recovery-block pattern).
                let mut rounds = 0;
                loop {
                    rounds += 1;
                    assert!(rounds < 50, "retry loop must converge");
                    let before = p.comm_validate_all(WORLD)?;
                    let r = p.allreduce(WORLD, &1u64, |a, b| a + b);
                    let after = p.comm_validate_all(WORLD)?;
                    match r {
                        Ok(v) if before == after => return Ok(v),
                        Ok(_) => continue,
                        Err(e) if e.is_terminal() => return Err(e),
                        Err(Error::RankFailStop { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
            },
        );
        assert!(!report.hung, "seed {seed} (victims {victims:?}) hung");
        // All survivors agree on the final sum = survivor count...
        // except victims scheduled but never triggered (they survive).
        let survivors: Vec<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_ok())
            .map(|(r, _)| r)
            .collect();
        let mut sums = std::collections::HashSet::new();
        for &r in &survivors {
            sums.insert(*report.outcomes[r].as_ok().unwrap());
        }
        assert_eq!(sums.len(), 1, "seed {seed}: survivors disagree: {sums:?}");
        let sum = *sums.iter().next().unwrap();
        assert_eq!(sum as usize, survivors.len(), "seed {seed}: sum = survivor count");
    }
}

#[test]
fn fatal_handler_on_dup_is_independent() {
    // ERRORS_RETURN on WORLD, default (fatal) on the dup: an error on
    // the dup must abort the job even though WORLD would have returned.
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report: ftmpi::RunReport<()> = run(
        2,
        UniverseConfig::with_plan(plan).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            let dup = p.comm_dup(WORLD)?; // keeps ERRORS_ARE_FATAL
            if p.world_rank() == 1 {
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                return Ok(());
            }
            while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                std::thread::yield_now();
            }
            // This send errors -> fatal handler -> job abort; the call
            // returns the Aborted error for this rank to propagate.
            let err = p.send(dup, 1, 1, &0i32).unwrap_err();
            assert!(matches!(err, Error::Aborted { .. }), "got {err:?}");
            Err(err)
        },
    );
    assert!(matches!(report.outcomes[0], RankOutcome::Aborted { .. }));
}

#[test]
fn self_failure_unwinds_every_subsequent_call() {
    let plan = FaultPlan::none().kill_at(0, HookKind::BeforeSend, 2);
    let report = run(
        2,
        UniverseConfig::with_plan(plan).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 0 {
                p.send(WORLD, 1, 1, &1i32)?; // first send fine
                let err = p.send(WORLD, 1, 1, &2i32).unwrap_err();
                assert_eq!(err, Error::SelfFailed);
                // Every API call now fails the same way.
                assert_eq!(p.send(WORLD, 1, 1, &3i32).unwrap_err(), Error::SelfFailed);
                assert_eq!(p.comm_validate_all(WORLD).unwrap_err(), Error::SelfFailed);
                return Err(Error::SelfFailed);
            }
            let (v, _) = p.recv::<i32>(WORLD, Src::Rank(0), 1)?;
            Ok(v)
        },
    );
    assert!(report.outcomes[0].is_failed());
    assert_eq!(report.outcomes[1].as_ok(), Some(&1));
}

#[test]
fn ibarrier_completes_when_all_arrive() {
    let report = run_default(4, |p| {
        // Stagger arrivals a little.
        if p.world_rank() == 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let req = p.ibarrier(WORLD)?;
        let c = p.wait(req)?;
        assert!(c.data.is_empty());
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn ibarrier_errors_uniformly_when_a_rank_dies_before_arriving() {
    let plan = FaultPlan::none().kill_at(2, HookKind::Tick, 1);
    let report = run(
        4,
        UniverseConfig::with_plan(plan).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 2 {
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                return Ok(0);
            }
            let req = p.ibarrier(WORLD)?;
            match p.wait(req) {
                Err(Error::RankFailStop { rank }) => Ok(rank),
                other => panic!("expected uniform barrier failure, got {other:?}"),
            }
        },
    );
    assert!(!report.hung);
    for r in [0usize, 1, 3] {
        assert_eq!(report.outcomes[r].as_ok(), Some(&2), "rank {r}");
    }
}

#[test]
fn ibarrier_retry_excludes_the_dead_and_succeeds() {
    let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
    let report = run(
        3,
        UniverseConfig::with_plan(plan).watchdog(wd()),
        |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            if p.world_rank() == 1 {
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                return Ok(0);
            }
            // Round 0 fails (rank 1 never arrives); round 1's required
            // set excludes it and succeeds.
            let mut rounds = 0;
            loop {
                rounds += 1;
                assert!(rounds < 10);
                let req = p.ibarrier(WORLD)?;
                match p.wait(req) {
                    Ok(_) => return Ok(rounds),
                    Err(Error::RankFailStop { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
        },
    );
    assert!(!report.hung);
    let r0 = *report.outcomes[0].as_ok().unwrap();
    let r2 = *report.outcomes[2].as_ok().unwrap();
    assert_eq!(r0, r2, "both survivors exit in the same round");
    assert!(r0 >= 1);
}

#[test]
fn ibarrier_composes_with_waitany() {
    let report = run_default(2, |p| {
        let never = p.irecv(WORLD, Src::Rank((p.world_rank() + 1) % 2), 77)?;
        let bar = p.ibarrier(WORLD)?;
        let out = p.waitany(&[never, bar])?;
        assert_eq!(out.index, 1, "the barrier completes first");
        assert!(out.result.is_ok());
        p.cancel(never)?;
        Ok(())
    });
    assert!(report.all_ok());
}

#[test]
fn recv_into_copies_and_truncates() {
    let report = run_default(2, |p| {
        p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
        if p.world_rank() == 0 {
            p.send(WORLD, 1, 1, &0x0102030405060708u64)?;
            p.send(WORLD, 1, 2, &0xAABBCCDDu32)?;
            Ok(0)
        } else {
            // Big enough buffer: exact copy.
            let mut buf = [0u8; 16];
            let (n, st) = p.recv_into(WORLD, Src::Rank(0), 1, &mut buf)?;
            assert_eq!(n, 8);
            assert_eq!(st.len, 8);
            assert_eq!(&buf[..8], &0x0102030405060708u64.to_le_bytes());
            // Too small: truncation error, message still consumed.
            let mut tiny = [0u8; 2];
            match p.recv_into(WORLD, Src::Rank(0), 2, &mut tiny) {
                Err(Error::Truncated { got: 4, cap: 2 }) => {}
                other => panic!("expected truncation, got {other:?}"),
            }
            assert!(p.iprobe(WORLD, Src::Rank(0), 2)?.is_none(), "message consumed");
            Ok(0)
        }
    });
    assert!(report.all_ok());
}
