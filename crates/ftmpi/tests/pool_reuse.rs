//! Pool-reuse equivalence in wall-clock mode: a [`UniversePool`]
//! recycled across a failing run and then a clean run must report
//! exactly what fresh spawn-per-run universes report for the same
//! configurations. This is the reset protocol's contract outside the
//! deterministic simulator (where the golden-log suite already pins it
//! byte-for-byte).
//!
//! Compared fields are `outcomes`, `hung` and `generations` — the
//! run's logical result. `duration` and `park_timeouts` are wall-clock
//! measurements and legitimately vary run to run.

use std::time::Duration;

use faultsim::{FaultPlan, HookKind};
use ftmpi::{
    run, ErrorHandler, Process, RankOutcome, RankState, RespawnPolicy, Result, Src,
    UniverseConfig, UniversePool, WORLD,
};

const N: usize = 4;

fn wd() -> Duration {
    Duration::from_secs(60)
}

/// One ring exchange; tolerant of a validated failure so outcomes stay
/// deterministic whether or not a kill is planned.
fn ring_once(p: &mut Process) -> Result<u64> {
    p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
    let me = p.world_rank();
    let next = (me + 1) % N;
    let prev = (me + N - 1) % N;
    let (v, _) = p.sendrecv::<u64, u64>(WORLD, next, 0, &(me as u64), Src::Rank(prev), 0)?;
    Ok(v)
}

/// A run where the victim dies only after its receive completed — the
/// race-free kill point (every send naming the victim precedes its
/// death), so outcomes are deterministic in wall-clock mode.
fn failing_cfg() -> UniverseConfig {
    let plan = FaultPlan::none().kill_at(2, HookKind::AfterRecvComplete, 1);
    UniverseConfig::with_plan(plan).watchdog(wd())
}

fn clean_cfg() -> UniverseConfig {
    UniverseConfig::default().watchdog(wd())
}

fn logical<T: std::fmt::Debug + PartialEq>(
    r: &ftmpi::RunReport<T>,
) -> (&Vec<RankOutcome<T>>, bool, &Vec<u32>) {
    (&r.outcomes, r.hung, &r.generations)
}

/// The satellite's core scenario: failing run, then clean run, through
/// ONE pool — each must match its spawn-per-run twin, and in
/// particular no failure state may leak into the clean run.
#[test]
fn reused_pool_matches_spawn_per_run_across_failing_then_clean() {
    let spawn_failing = run(N, failing_cfg(), ring_once);
    let spawn_clean = run(N, clean_cfg(), ring_once);

    let mut pool = UniversePool::new(N);
    let pool_failing = pool.run(failing_cfg(), ring_once);
    let pool_clean = pool.run(clean_cfg(), ring_once);

    assert_eq!(logical(&spawn_failing), logical(&pool_failing), "failing run diverged");
    assert_eq!(logical(&spawn_clean), logical(&pool_clean), "clean run diverged");
    assert!(pool_failing.outcomes[2].is_failed(), "victim must be killed");
    assert!(pool_clean.all_ok(), "failure state bled into the clean run");
}

/// Respawn runs also reset cleanly: generations return to zero on the
/// next run instead of carrying the revived incarnation forward. The
/// scenario is the recovery suite's deterministic two-rank shape —
/// rank 0 holds the universe open until rank 1's revival, so the
/// respawn always happens.
#[test]
fn respawn_generations_do_not_leak_into_the_next_run() {
    let mk_cfg = || {
        let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
        UniverseConfig::with_plan(plan)
            .watchdog(wd())
            .respawning(RespawnPolicy { after: Duration::from_millis(5), max_per_rank: 1 })
    };
    let body = |p: &mut Process| -> Result<u32> {
        p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
        if p.world_rank() == 1 {
            if p.generation() == 0 {
                // First incarnation: dies at its first Tick.
                let req = p.irecv(WORLD, Src::Rank(0), 9)?;
                let _ = p.wait(req)?;
                unreachable!("killed by the tick");
            }
            // Second incarnation: answer rank 0.
            let (v, _) = p.recv::<u32>(WORLD, Src::Rank(0), 1)?;
            p.send(WORLD, 0, 2, &(v + 1))?;
            return Ok(p.generation());
        }
        // Rank 0: observe death, then recovery, then talk to the new
        // incarnation.
        while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
            std::thread::yield_now();
        }
        while p.comm_validate_rank(WORLD, 1)?.state != RankState::Ok {
            std::thread::yield_now();
        }
        p.send(WORLD, 1, 1, &41u32)?;
        let (v, _) = p.recv::<u32>(WORLD, Src::Rank(1), 2)?;
        Ok(v)
    };

    let spawn_report = run(2, mk_cfg(), body);
    let mut pool = UniversePool::new(2);
    let pool_report = pool.run(mk_cfg(), body);
    assert_eq!(logical(&spawn_report), logical(&pool_report), "respawn run diverged");
    assert_eq!(pool_report.generations, vec![0, 1], "rank 1 must have been revived");

    // Clean follow-up on the same pool: generation state fully rewound.
    let clean = pool.run::<u32, _>(clean_cfg(), |p| {
        p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
        let me = p.world_rank() as u32;
        let peer = 1 - p.world_rank();
        let (v, _) = p.sendrecv(WORLD, peer, 0, &me, Src::Rank(peer), 0)?;
        Ok(v)
    });
    assert!(clean.all_ok());
    assert_eq!(clean.generations, vec![0, 0], "incarnations leaked across runs");
}

/// Many clean runs through one pool behave identically to many fresh
/// universes — the steady-state the DST sweep engine lives in.
#[test]
fn many_reused_runs_stay_identical_to_fresh_runs() {
    let mut pool = UniversePool::new(N);
    for round in 0..10 {
        let fresh = run(N, clean_cfg(), ring_once);
        let pooled = pool.run(clean_cfg(), ring_once);
        assert_eq!(logical(&fresh), logical(&pooled), "round {round} diverged");
        assert!(pooled.all_ok(), "round {round} failed");
    }
}
