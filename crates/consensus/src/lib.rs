//! # consensus — application-level agreement over `ftmpi`
//!
//! The paper's §III-D discusses what a *fault-tolerant application*
//! can build when the root fails: a leader election (Fig. 12), a
//! reliable broadcast (discussed and rejected as "delicate to
//! implement"), and finally the MPI-provided fault-tolerant consensus
//! (`MPI_Comm_validate_all`). The `ftmpi` runtime implements
//! `validate_all` as a shared-memory decision barrier; this crate
//! provides the *message-passing* counterparts an application (or a
//! real MPI library) would use, both as faithful reproductions of the
//! paper's artifacts and as ablation baselines for the benchmarks:
//!
//! * [`election`] — the lowest-alive-rank leader election of Fig. 12;
//! * [`rbcast`] — flooding reliable broadcast (every deliverer forwards
//!   before delivering, so delivery at any survivor implies eventual
//!   delivery at all survivors);
//! * [`agreement`] — a coordinator-based uniform agreement on the
//!   failed set, with coordinator-crash recovery;
//! * [`flooding`] — an all-to-all echo agreement, simpler but only
//!   agreeing in failure-quiescent runs (the textbook reason the
//!   coordinator protocol exists).

#![warn(missing_docs)]

pub mod agreement;
pub mod election;
pub mod flooding;
pub mod rbcast;

pub use agreement::{agree_on_failed_set, AgreementConfig};
pub use election::{current_root, elect};
pub use flooding::flooding_failed_set;
pub use rbcast::{rbcast, RbcastConfig};
