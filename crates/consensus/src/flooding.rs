//! All-to-all flooding agreement (ablation baseline).
//!
//! The obvious "just exchange views until they match" protocol: each
//! process repeatedly sends its current failed-set view to every alive
//! peer and waits for their views; when a full exchange round
//! completes with every received view equal to its own, it decides.
//!
//! **Guarantee:** agreement holds in *failure-quiescent* runs (all
//! failures happen-before the protocol, or the protocol is re-run
//! after the last failure). A failure concurrent with the deciding
//! round can split the decision — one process decides the old view
//! while another restarts and decides a larger set. This is precisely
//! the gap the coordinator protocol in [`crate::agreement`] closes,
//! and the benchmark suite quantifies what that closure costs.

use std::collections::HashSet;

use ftmpi::{Comm, Error, Process, RankState, Result, Src, Tag};

/// Wire form: (round, failed set as u64 comm ranks).
type Msg = (u64, Vec<u64>);

/// Run the flooding agreement; returns the agreed failed set.
///
/// All alive members must participate. `tag` must be reserved for this
/// protocol on this communicator.
pub fn flooding_failed_set(p: &mut Process, comm: Comm, tag: Tag) -> Result<Vec<usize>> {
    let me = p.comm_rank(comm)?;
    let size = p.comm_size(comm)?;
    if size == 1 {
        return Ok(Vec::new());
    }
    let mut round: u64 = 0;
    'restart: loop {
        round += 1;
        // Snapshot my view.
        let view: HashSet<u64> = p
            .comm_validate(comm)?
            .into_iter()
            .map(|info| info.rank as u64)
            .collect();
        let mut sorted: Vec<u64> = view.iter().copied().collect();
        sorted.sort_unstable();

        // Send my view to every alive peer.
        let alive: Vec<usize> = (0..size)
            .filter(|&r| r != me)
            .filter(|&r| {
                p.comm_validate_rank(comm, r)
                    .map(|i| i.state == RankState::Ok)
                    .unwrap_or(false)
            })
            .collect();
        let msg: Msg = (round, sorted.clone());
        for &dst in &alive {
            match p.send(comm, dst, tag, &msg) {
                Ok(()) => {}
                Err(e) if e.is_terminal() => return Err(e),
                Err(_) => continue 'restart, // new failure: restart
            }
        }

        // Collect one view from each alive peer for this round.
        for &src in &alive {
            loop {
                match p.recv::<Msg>(comm, Src::Rank(src), tag) {
                    Ok(((r, set), _)) => {
                        if r < round {
                            continue; // stale round: drop, keep waiting
                        }
                        if set != sorted {
                            continue 'restart; // views differ: go again
                        }
                        break;
                    }
                    Err(e) if e.is_terminal() => return Err(e),
                    Err(Error::RankFailStop { .. }) => continue 'restart,
                    Err(e) => return Err(e),
                }
            }
        }

        // A full round of identical views — and is my view still
        // current?
        let now: HashSet<u64> = p
            .comm_validate(comm)?
            .into_iter()
            .map(|info| info.rank as u64)
            .collect();
        if now == view {
            return Ok(sorted.into_iter().map(|r| r as usize).collect());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::{FaultPlan, HookKind};
    use ftmpi::{run, run_default, ErrorHandler, UniverseConfig, WORLD};
    use std::time::Duration;

    const TAG: Tag = 0x00F7_0003;

    #[test]
    fn quiescent_no_failures_agrees_empty() {
        let report = run_default(4, |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            flooding_failed_set(p, WORLD, TAG)
        });
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&vec![]));
        }
    }

    #[test]
    fn quiescent_prior_failure_agrees() {
        let plan = FaultPlan::none().kill_at(1, HookKind::Tick, 1);
        let report = run(
            4,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                if p.world_rank() == 1 {
                    let req = p.irecv(WORLD, Src::Rank(0), 99)?;
                    let _ = p.wait(req)?;
                    return Ok(vec![]);
                }
                // Quiesce: wait for the failure to be visible first.
                while p.comm_validate_rank(WORLD, 1)?.state == RankState::Ok {
                    std::thread::yield_now();
                }
                flooding_failed_set(p, WORLD, TAG)
            },
        );
        assert!(!report.hung);
        for r in [0usize, 2, 3] {
            assert_eq!(report.outcomes[r].as_ok(), Some(&vec![1]), "rank {r}");
        }
    }

    #[test]
    fn singleton_returns_empty() {
        let report = run_default(1, |p| flooding_failed_set(p, WORLD, TAG));
        assert_eq!(report.outcomes[0].as_ok(), Some(&vec![]));
    }
}
