//! Flooding reliable broadcast.
//!
//! The paper's §III-D notes that replacing the root's plain termination
//! broadcast with a *reliable* broadcast "is delicate to implement,
//! especially when attempting to improve the scalability of the
//! algorithm" — and then side-steps it with `MPI_Icomm_validate_all`.
//! This module implements the unscalable-but-correct baseline the
//! paper alludes to, so the benchmarks can quantify that trade-off.
//!
//! Protocol (classic eager reliable broadcast under fail-stop):
//!
//! * The origin sends `(id, payload)` to every alive rank.
//! * Every process, on *first* receipt of an `id`, first forwards the
//!   message to every alive rank (except itself), then delivers.
//!
//! Because forwarding precedes delivery and sends are reliable to
//! alive targets, if any process that delivers stays alive, every
//! alive process eventually receives the message — the origin dying
//! mid-send is healed by the survivors' forwards. Cost: O(n²)
//! messages, which is the paper's scalability complaint.

use std::collections::HashSet;

use ftmpi::{Comm, Datatype, Error, Process, Request, Result, Src, Tag};

/// Configuration for a reliable-broadcast domain.
#[derive(Debug, Clone, Copy)]
pub struct RbcastConfig {
    /// User tag carrying rbcast traffic. Must not be reused by the
    /// application on the same communicator.
    pub tag: Tag,
}

impl Default for RbcastConfig {
    fn default() -> Self {
        RbcastConfig { tag: 0x00F7_0001 }
    }
}

fn alive_targets(p: &Process, comm: Comm) -> Result<Vec<usize>> {
    let me = p.comm_rank(comm)?;
    Ok(p.alive_ranks(comm)?.into_iter().filter(|&r| r != me).collect())
}

/// Originate a reliable broadcast of `(id, payload)`.
///
/// The `id` must be unique per broadcast within the tag's lifetime
/// (e.g. a round counter). Send failures to already-dead ranks are
/// skipped; the flood heals the rest.
pub fn rbcast<T: Datatype>(
    p: &mut Process,
    comm: Comm,
    cfg: RbcastConfig,
    id: u64,
    payload: &T,
) -> Result<()> {
    let msg = (id, T::from_bytes(&payload.to_bytes())?);
    for dst in alive_targets(p, comm)? {
        match p.send(comm, dst, cfg.tag, &msg) {
            Ok(()) => {}
            Err(e) if e.is_terminal() => return Err(e),
            Err(_) => {} // dst died: survivors' forwards cover it
        }
    }
    Ok(())
}

/// Receiving endpoint of a reliable-broadcast domain.
///
/// Keeps one receive posted per alive peer for the lifetime of the
/// protocol, so no forwarded copy is ever dropped between deliveries.
///
/// Deliberately avoids `MPI_ANY_SOURCE`: an any-source receive errors
/// whenever *any* unrecognized failure exists (§II of the paper), which
/// would force recognition decisions on the application; a dead peer
/// here simply retires its slot.
pub struct RbcastReceiver {
    comm: Comm,
    cfg: RbcastConfig,
    /// (peer comm rank, posted request); `None` once the peer is dead.
    slots: Vec<(usize, Option<Request>)>,
    /// Delivered (or forwarded) broadcast ids.
    seen: HashSet<u64>,
    /// Messages received but not yet asked for: (id, raw payload).
    stash: Vec<(u64, bytes::Bytes)>,
}

impl RbcastReceiver {
    /// Create the receiver and post one receive per peer. Receives
    /// posted to already-dead peers still match anything the peer
    /// delivered before dying (a receive against a failed rank first
    /// consumes queued messages, then completes in error), which the
    /// event loop turns into a drain-and-retire.
    pub fn new(p: &mut Process, comm: Comm, cfg: RbcastConfig) -> Result<Self> {
        let me = p.comm_rank(comm)?;
        let size = p.comm_size(comm)?;
        let mut slots = Vec::with_capacity(size.saturating_sub(1));
        for peer in (0..size).filter(|&r| r != me) {
            let req = p.irecv(comm, Src::Rank(peer), cfg.tag)?;
            slots.push((peer, Some(req)));
        }
        Ok(RbcastReceiver { comm, cfg, slots, seen: HashSet::new(), stash: Vec::new() })
    }

    /// Process one raw message: dedup, forward, then stash or signal
    /// delivery of `expect_id`.
    fn process(
        &mut self,
        p: &mut Process,
        raw: bytes::Bytes,
        expect_id: u64,
    ) -> Result<Option<bytes::Bytes>> {
        let (id, _) = u64::decode(&raw)?;
        if !self.seen.insert(id) {
            return Ok(None); // duplicate from a forwarder
        }
        // Forward the raw message before delivering.
        for dst in alive_targets(p, self.comm)? {
            match p.send_bytes(self.comm, dst, self.cfg.tag, raw.clone()) {
                Ok(()) => {}
                Err(e) if e.is_terminal() => return Err(e),
                Err(_) => {}
            }
        }
        let payload = raw.slice(8..);
        if id == expect_id {
            return Ok(Some(payload));
        }
        self.stash.push((id, payload));
        Ok(None)
    }

    /// Absorb messages a now-dead peer delivered before dying, then
    /// retire its slot. Returns a delivery if one of them was the
    /// awaited broadcast.
    fn drain_dead(
        &mut self,
        p: &mut Process,
        slot_idx: usize,
        expect_id: u64,
    ) -> Result<Option<bytes::Bytes>> {
        self.slots[slot_idx].1 = None;
        let peer = self.slots[slot_idx].0;
        let mut delivered = None;
        loop {
            let req = p.irecv(self.comm, Src::Rank(peer), self.cfg.tag)?;
            match p.test(req) {
                Ok(Some(c)) if !c.status.is_proc_null() && !c.data.is_empty() => {
                    if let Some(v) = self.process(p, c.data, expect_id)? {
                        delivered.get_or_insert(v);
                    }
                }
                Ok(Some(_)) => return Ok(delivered),
                Ok(None) => {
                    p.cancel(req)?;
                    return Ok(delivered);
                }
                Err(e) if e.is_terminal() => return Err(e),
                Err(_) => return Ok(delivered),
            }
        }
    }

    /// Block until the broadcast with `expect_id` is delivered.
    /// Forwards every first-seen message before delivering it.
    pub fn deliver<T: Datatype>(&mut self, p: &mut Process, expect_id: u64) -> Result<T> {
        // Already stashed from an earlier wait?
        if let Some(pos) = self.stash.iter().position(|(id, _)| *id == expect_id) {
            let (_, data) = self.stash.swap_remove(pos);
            return T::from_bytes(&data);
        }
        loop {
            let live: Vec<Request> = self.slots.iter().filter_map(|&(_, r)| r).collect();
            if live.is_empty() {
                // Every peer failed before the broadcast reached us.
                return Err(Error::RankFailStop { rank: 0 });
            }
            let out = p.waitany(&live)?;
            let completed = live[out.index];
            let slot_idx = self
                .slots
                .iter()
                .position(|&(_, r)| r == Some(completed))
                .expect("completed request belongs to a slot");
            match out.result {
                Err(e) if e.is_terminal() => return Err(e),
                Err(_) => {
                    // Peer died: absorb anything it delivered first.
                    if let Some(data) = self.drain_dead(p, slot_idx, expect_id)? {
                        return T::from_bytes(&data);
                    }
                }
                Ok(c) if c.status.is_proc_null() => {
                    if let Some(data) = self.drain_dead(p, slot_idx, expect_id)? {
                        return T::from_bytes(&data);
                    }
                }
                Ok(c) => {
                    let peer = self.slots[slot_idx].0;
                    self.slots[slot_idx].1 =
                        Some(p.irecv(self.comm, Src::Rank(peer), self.cfg.tag)?);
                    if let Some(data) = self.process(p, c.data, expect_id)? {
                        return T::from_bytes(&data);
                    }
                }
            }
        }
    }

    /// Tear down, cancelling the posted receives. Any in-flight copies
    /// after this point land in the unexpected queue and are dropped
    /// when the process ends (the protocol is over).
    pub fn close(mut self, p: &mut Process) {
        for (_, r) in self.slots.iter_mut() {
            if let Some(req) = r.take() {
                let _ = p.cancel(req);
            }
        }
    }
}

/// How many point-to-point messages one rbcast costs in an
/// `n`-survivor communicator (origin + every deliverer forwards).
pub fn rbcast_message_cost(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        // Origin sends n-1; each of the n-1 deliverers forwards to n-1
        // targets (everyone but itself).
        (n - 1) * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::{FaultRule, HookKind, Trigger};
    use ftmpi::{run, run_default, ErrorHandler, UniverseConfig, WORLD};
    use std::time::Duration;

    #[test]
    fn broadcast_reaches_everyone() {
        let report = run_default(5, |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            let cfg = RbcastConfig::default();
            if p.world_rank() == 0 {
                rbcast(p, WORLD, cfg, 1, &777i64)?;
                Ok(777)
            } else {
                let mut rx = RbcastReceiver::new(p, WORLD, cfg)?;
                let v = rx.deliver::<i64>(p, 1)?;
                rx.close(p);
                Ok(v)
            }
        });
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&777));
        }
    }

    #[test]
    fn delivery_survives_origin_death_mid_broadcast() {
        // Kill the origin after its FIRST send: only rank 1 has the
        // message; the flood must still deliver to ranks 2..4.
        let plan = faultsim::FaultPlan::none().with(FaultRule::kill(
            0,
            Trigger::on(HookKind::AfterSend).nth(1),
        ));
        let report = run(
            5,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                let cfg = RbcastConfig::default();
                if p.world_rank() == 0 {
                    rbcast(p, WORLD, cfg, 9, &42u32)?;
                    Ok(42)
                } else {
                    let mut rx = RbcastReceiver::new(p, WORLD, cfg)?;
                    let v = rx.deliver::<u32>(p, 9)?;
                    rx.close(p);
                    Ok(v)
                }
            },
        );
        assert!(!report.hung);
        assert!(report.outcomes[0].is_failed());
        for r in 1..5 {
            assert_eq!(report.outcomes[r].as_ok(), Some(&42), "rank {r}");
        }
    }

    #[test]
    fn sequential_broadcasts_deliver_in_id_order_without_loss() {
        let report = run_default(4, |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            let cfg = RbcastConfig::default();
            if p.world_rank() == 0 {
                for id in 1..=3u64 {
                    rbcast(p, WORLD, cfg, id, &(id as i64 * 11))?;
                }
                Ok(66)
            } else {
                let mut rx = RbcastReceiver::new(p, WORLD, cfg)?;
                // Ask out of order: 2 then 1 then 3 — the stash holds
                // early arrivals.
                let b = rx.deliver::<i64>(p, 2)?;
                let a = rx.deliver::<i64>(p, 1)?;
                let c = rx.deliver::<i64>(p, 3)?;
                rx.close(p);
                assert_eq!((a, b, c), (11, 22, 33));
                Ok(a + b + c)
            }
        });
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&66));
        }
    }

    #[test]
    fn message_cost_is_quadratic() {
        assert_eq!(rbcast_message_cost(1), 0);
        assert_eq!(rbcast_message_cost(2), 2);
        assert_eq!(rbcast_message_cost(4), 12);
        // The quadratic growth is the paper's scalability complaint.
        assert!(rbcast_message_cost(64) > 64 * 32);
    }
}
