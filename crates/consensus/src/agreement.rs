//! Coordinator-based uniform agreement on the failed set.
//!
//! This is the message-passing protocol a real MPI library would run
//! inside `MPI_Comm_validate_all` (the `ftmpi` runtime uses a
//! shared-memory decision barrier instead; this implementation exists
//! as the faithful distributed counterpart and as a benchmark
//! ablation). All alive members of the communicator must call
//! [`agree_on_failed_set`] (it is collective); they all return the
//! same failed set — **uniform** agreement under fail-stop failures
//! with a perfect failure detector, including failures of the
//! coordinator at any point.
//!
//! ### Protocol
//!
//! Coordinator candidates are the comm ranks in ascending order; the
//! current *attempt* is the lowest rank not yet observed failed.
//!
//! * **REPORT(a, S)** — participant → rank `a`: "my failed-set view is
//!   S and I have not decided".
//! * **COMMIT(a, S)** — coordinator `a` → all alive: decision.
//!   Accepted only while the receiver's attempt is exactly `a` (a
//!   stale commit from a dead coordinator must not bypass the
//!   recovery path).
//! * **DECIDED(S)** — any process that has decided → all alive, sent
//!   *before* it returns. Accepted any time, and counts as the
//!   sender's report for every future coordinator.
//!
//! The coordinator commits the union of every collected set and its
//! own registry view. Uniformity argument: a process only returns
//! after broadcasting DECIDED to all alive ranks (delivery precedes
//! its own possible death, by fail-stop), so any later coordinator's
//! collection necessarily includes a DECIDED(S) from every earlier
//! decider that matters — and it adopts S rather than computing a new
//! set. The subtle case of a peer dying *just after* sending its
//! parting message is handled by draining: on observing a peer's
//! death, the event loop re-posts one receive at a time against that
//! peer to absorb messages that were delivered before the death.

use std::collections::{HashMap, HashSet};

use ftmpi::{Comm, Datatype, Process, RankState, Request, Result, Src, Tag};

const K_REPORT: u8 = 0;
const K_COMMIT: u8 = 1;
const K_DECIDED: u8 = 2;

/// Wire form: (kind, attempt, failed set as u64 comm ranks).
type Msg = (u8, u64, Vec<u64>);

/// Configuration for the agreement protocol.
#[derive(Debug, Clone, Copy)]
pub struct AgreementConfig {
    /// User tag carrying agreement traffic; must be reserved for it.
    pub tag: Tag,
}

impl Default for AgreementConfig {
    fn default() -> Self {
        AgreementConfig { tag: 0x00F7_0002 }
    }
}

struct Agreement<'a> {
    p: &'a mut Process,
    comm: Comm,
    tag: Tag,
    me: usize,
    size: usize,
    /// (peer, posted request); `None` once the peer is dead & drained.
    slots: Vec<(usize, Option<Request>)>,
    /// Latest failed-set report per peer (REPORT or DECIDED).
    reports: HashMap<usize, Vec<u64>>,
    /// Peers known to have decided, with their set.
    decided_peers: HashMap<usize, Vec<u64>>,
    /// My decision, once made.
    decision: Option<Vec<u64>>,
    /// My current coordinator candidate.
    attempt: usize,
    /// Attempts for which my REPORT has been sent.
    reported: HashSet<usize>,
}

impl<'a> Agreement<'a> {
    fn new(p: &'a mut Process, comm: Comm, cfg: AgreementConfig) -> Result<Self> {
        let me = p.comm_rank(comm)?;
        let size = p.comm_size(comm)?;
        let mut slots = Vec::with_capacity(size.saturating_sub(1));
        for peer in (0..size).filter(|&r| r != me) {
            let req = p.irecv(comm, Src::Rank(peer), cfg.tag)?;
            slots.push((peer, Some(req)));
        }
        Ok(Agreement {
            p,
            comm,
            tag: cfg.tag,
            me,
            size,
            slots,
            reports: HashMap::new(),
            decided_peers: HashMap::new(),
            decision: None,
            attempt: 0,
            reported: HashSet::new(),
        })
    }

    fn alive(&self, rank: usize) -> Result<bool> {
        Ok(self.p.comm_validate_rank(self.comm, rank)?.state == RankState::Ok)
    }

    fn my_view(&self) -> Result<Vec<u64>> {
        Ok(self
            .p
            .comm_validate(self.comm)?
            .into_iter()
            .map(|info| info.rank as u64)
            .collect())
    }

    fn send_to(&mut self, dst: usize, msg: &Msg) -> Result<()> {
        match self.p.send(self.comm, dst, self.tag, msg) {
            Ok(()) => Ok(()),
            Err(e) if e.is_terminal() => Err(e),
            Err(_) => Ok(()), // dead peer: irrelevant
        }
    }

    fn broadcast(&mut self, msg: &Msg) -> Result<()> {
        for dst in 0..self.size {
            if dst != self.me && self.alive(dst)? {
                self.send_to(dst, msg)?;
            }
        }
        Ok(())
    }

    fn handle(&mut self, from: usize, msg: Msg) {
        let (kind, att, set) = msg;
        match kind {
            K_REPORT => {
                debug_assert_eq!(att as usize, self.me, "reports are addressed by attempt");
                self.reports.insert(from, set);
            }
            // Stale commits (att != attempt) from a coordinator we
            // already saw die are ignored; recovery flows through
            // DECIDED messages.
            K_COMMIT if att as usize == self.attempt => {
                self.decision = Some(set);
            }
            K_COMMIT => {}
            K_DECIDED => {
                self.decided_peers.insert(from, set.clone());
                if self.decision.is_none() {
                    self.decision = Some(set);
                }
            }
            _ => {}
        }
    }

    /// Absorb any messages a now-dead peer delivered before dying.
    fn drain_parting(&mut self, peer: usize) -> Result<()> {
        loop {
            let req = self.p.irecv(self.comm, Src::Rank(peer), self.tag)?;
            match self.p.test(req) {
                Ok(Some(c)) if !c.status.is_proc_null() && !c.data.is_empty() => {
                    let msg = Msg::from_bytes(&c.data)?;
                    self.handle(peer, msg);
                }
                Ok(Some(_)) => return Ok(()), // proc-null completion
                Ok(None) => {
                    // Still pending: nothing queued (everything a dead
                    // peer sent was delivered before its death, and
                    // `test` ran a full progress pass). Cancel and stop.
                    self.p.cancel(req)?;
                    return Ok(());
                }
                Err(e) if e.is_terminal() => return Err(e),
                // RankFailStop completion: the queue from this peer is
                // exhausted.
                Err(_) => return Ok(()),
            }
        }
    }

    fn run(mut self) -> Result<Vec<usize>> {
        loop {
            // 1. Decided (by commit, decided-message, or own
            //    coordination): announce and return.
            if let Some(set) = self.decision.clone() {
                let msg: Msg = (K_DECIDED, self.attempt as u64, set.clone());
                self.broadcast(&msg)?;
                for (_, r) in self.slots.iter_mut() {
                    if let Some(req) = r.take() {
                        let _ = self.p.cancel(req);
                    }
                }
                return Ok(set.into_iter().map(|r| r as usize).collect());
            }

            // 2. Advance the attempt past dead coordinators.
            while self.attempt < self.me && !self.alive(self.attempt)? {
                self.attempt += 1;
            }

            if self.attempt == self.me {
                // 3. Coordinator role: wait for a report or decided
                //    marker from every alive peer.
                let mut complete = true;
                for peer in (0..self.size).filter(|&r| r != self.me) {
                    let covered = self.reports.contains_key(&peer)
                        || self.decided_peers.contains_key(&peer)
                        || !self.alive(peer)?;
                    if !covered {
                        complete = false;
                        break;
                    }
                }
                if complete {
                    // Adopt any existing decision; otherwise union.
                    let set: Vec<u64> = if let Some(s) = self.decided_peers.values().next() {
                        s.clone()
                    } else {
                        let mut union: HashSet<u64> = self.my_view()?.into_iter().collect();
                        for s in self.reports.values() {
                            union.extend(s.iter().copied());
                        }
                        let mut v: Vec<u64> = union.into_iter().collect();
                        v.sort_unstable();
                        v
                    };
                    let msg: Msg = (K_COMMIT, self.attempt as u64, set.clone());
                    self.broadcast(&msg)?;
                    self.decision = Some(set);
                    continue;
                }
            } else {
                // 4. Participant role: report once per attempt.
                if !self.reported.contains(&self.attempt) {
                    let view = self.my_view()?;
                    let msg: Msg = (K_REPORT, self.attempt as u64, view);
                    let dst = self.attempt;
                    self.send_to(dst, &msg)?;
                    self.reported.insert(self.attempt);
                }
            }

            // 5. Wait for the next event on any slot.
            let live: Vec<Request> = self.slots.iter().filter_map(|&(_, r)| r).collect();
            if live.is_empty() {
                // No alive peers: I am the only survivor; next loop
                // iteration makes me coordinator with a trivially
                // complete collection.
                if self.attempt == self.me {
                    continue;
                }
                // attempt will advance to me on the next pass
                continue;
            }
            let out = self.p.waitany(&live)?;
            let completed = live[out.index];
            let idx = self
                .slots
                .iter()
                .position(|&(_, r)| r == Some(completed))
                .expect("slot for completed request");
            let peer = self.slots[idx].0;
            match out.result {
                Err(e) if e.is_terminal() => return Err(e),
                Err(_) => {
                    self.slots[idx].1 = None;
                    self.drain_parting(peer)?;
                }
                Ok(c) if c.status.is_proc_null() => {
                    self.slots[idx].1 = None;
                }
                Ok(c) => {
                    self.slots[idx].1 =
                        Some(self.p.irecv(self.comm, Src::Rank(peer), self.tag)?);
                    let msg = Msg::from_bytes(&c.data)?;
                    self.handle(peer, msg);
                }
            }
        }
    }
}

/// Collectively agree on the set of failed comm ranks.
///
/// Every alive member of `comm` must call this; all callers that stay
/// alive return the same sorted failed set. Failures occurring during
/// the call (including coordinator failures) are tolerated; ranks
/// failing mid-protocol may or may not appear in the agreed set, but
/// the set is identical at every survivor.
pub fn agree_on_failed_set(
    p: &mut Process,
    comm: Comm,
    cfg: AgreementConfig,
) -> Result<Vec<usize>> {
    if p.comm_size(comm)? == 1 {
        return Ok(Vec::new());
    }
    Agreement::new(p, comm, cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::{FaultPlan, FaultRule, HookKind, Trigger};
    use ftmpi::{run, run_default, ErrorHandler, UniverseConfig, WORLD};
    use std::time::Duration;

    fn agree_test(
        n: usize,
        plan: FaultPlan,
        victims: &[usize],
    ) -> Vec<Option<Vec<usize>>> {
        let victims = victims.to_vec();
        let report = run(
            n,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            move |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                if victims.contains(&p.world_rank()) {
                    // Victims idle until their trigger kills them; the
                    // Tick in this wait fires BeforeSend-free kills.
                    let req = p.irecv(WORLD, Src::Rank((p.world_rank() + 1) % p.world_size()), 99)?;
                    let _ = p.wait(req)?;
                    return Ok(vec![]);
                }
                agree_on_failed_set(p, WORLD, AgreementConfig::default())
            },
        );
        assert!(!report.hung, "agreement must not hang");
        report
            .outcomes
            .iter()
            .map(|o| o.as_ok().cloned())
            .collect()
    }

    #[test]
    fn no_failures_agrees_on_empty_set() {
        let report = run_default(4, |p| {
            p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
            agree_on_failed_set(p, WORLD, AgreementConfig::default())
        });
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&vec![]));
        }
    }

    #[test]
    fn singleton_trivially_agrees() {
        let report = run_default(1, |p| {
            agree_on_failed_set(p, WORLD, AgreementConfig::default())
        });
        assert_eq!(report.outcomes[0].as_ok(), Some(&vec![]));
    }

    #[test]
    fn survivors_agree_on_prior_failure() {
        let plan = FaultPlan::none().kill_at(2, HookKind::Tick, 1);
        let sets = agree_test(5, plan, &[2]);
        let expected = Some(vec![2usize]);
        for r in [0usize, 1, 3, 4] {
            assert_eq!(sets[r], expected, "rank {r}");
        }
    }

    #[test]
    fn coordinator_death_mid_collection_recovers() {
        // Rank 0 (first coordinator) dies right after it consumes its
        // first REPORT; rank 1 must take over and everyone must agree.
        let plan = FaultPlan::none().with(FaultRule::kill(
            0,
            Trigger::on(HookKind::AfterRecvComplete).nth(1),
        ));
        let report = run(
            4,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                agree_on_failed_set(p, WORLD, AgreementConfig::default())
            },
        );
        assert!(!report.hung);
        assert!(report.outcomes[0].is_failed());
        let sets: Vec<_> = (1..4).map(|r| report.outcomes[r].as_ok().unwrap()).collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
        assert!(sets[0].contains(&0), "the dead coordinator must be in the agreed set");
    }

    #[test]
    fn coordinator_death_after_partial_commit_stays_uniform() {
        // The coordinator dies after sending its first COMMIT: one
        // participant may decide from the commit; the rest must recover
        // the SAME set through the DECIDED flood.
        //
        // Tag-filtered trigger: the commit is the coordinator's second
        // batch of sends on the agreement tag (first batch = none: the
        // coordinator never reports). Kill after its 1st send.
        let tag = AgreementConfig::default().tag;
        let plan = FaultPlan::none().with(FaultRule::kill(
            0,
            Trigger::on(HookKind::AfterSend).tag(tag).nth(1),
        ));
        let report = run(
            5,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                agree_on_failed_set(p, WORLD, AgreementConfig::default())
            },
        );
        assert!(!report.hung);
        assert!(report.outcomes[0].is_failed());
        let sets: Vec<_> = (1..5).map(|r| report.outcomes[r].as_ok().unwrap()).collect();
        for w in sets.windows(2) {
            assert_eq!(w[0], w[1], "uniform agreement violated: {sets:?}");
        }
        // Note: the agreed set may or may not contain rank 0 — it died
        // *during* the protocol, possibly after committing an
        // empty-set decision. Uniformity is the guarantee, membership
        // of concurrent failures is not.
    }

    #[test]
    fn cascading_coordinator_deaths_recover() {
        // Ranks 0 and 1 both die while coordinating (on their first
        // receive of agreement traffic); rank 2 must finish the job.
        let plan = FaultPlan::none()
            .with(FaultRule::kill(0, Trigger::on(HookKind::AfterRecvComplete).nth(1)))
            .with(FaultRule::kill(1, Trigger::on(HookKind::AfterRecvComplete).nth(2)));
        let report = run(
            5,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(30)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                agree_on_failed_set(p, WORLD, AgreementConfig::default())
            },
        );
        assert!(!report.hung);
        let survivors: Vec<_> = (0..5)
            .filter(|&r| report.outcomes[r].is_ok())
            .collect();
        assert!(survivors.len() >= 3, "ranks 2..5 must survive");
        let first = report.outcomes[survivors[0]].as_ok().unwrap();
        for &r in &survivors {
            assert_eq!(report.outcomes[r].as_ok().unwrap(), first, "rank {r} disagrees");
        }
    }
}
