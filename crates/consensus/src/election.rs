//! Leader election (paper Fig. 12).
//!
//! "A simple leader election algorithm that determines the new root by
//! choosing the lowest rank among all the alive processes in the
//! communicator." Purely local: every process scans the communicator
//! with `MPI_Comm_validate_rank` and, because the failure detector is
//! perfect, all survivors that scan after the same set of failures
//! elect the same root.
//!
//! Note the agreement caveat the paper glosses over (and which its
//! §III-D root-recovery protocol must absorb): two processes scanning
//! *while* a failure is being detected can transiently elect different
//! roots; the ring algorithms are written so that an out-of-date
//! elected root only delays progress until the next failure
//! notification, never corrupts it.

use ftmpi::{Comm, Error, Process, RankState, Result};

/// `get_current_root` (paper Fig. 12): the lowest alive rank in
/// `comm`, or an abort-worthy error when every rank has failed (which
/// cannot be observed by an alive caller, but mirrors the paper's
/// `MPI_Abort` fallthrough).
pub fn current_root(p: &Process, comm: Comm) -> Result<usize> {
    let size = p.comm_size(comm)?;
    for n in 0..size {
        if p.comm_validate_rank(comm, n)?.state == RankState::Ok {
            return Ok(n);
        }
    }
    Err(Error::InvalidState("no alive rank in communicator"))
}

/// Generalized election: lowest alive rank satisfying `eligible`.
///
/// Lets an application exclude ranks it knows are unsuitable (e.g. a
/// rank that has announced it is about to leave). Returns `None` when
/// no alive rank is eligible.
pub fn elect(
    p: &Process,
    comm: Comm,
    mut eligible: impl FnMut(usize) -> bool,
) -> Result<Option<usize>> {
    let size = p.comm_size(comm)?;
    for n in 0..size {
        if p.comm_validate_rank(comm, n)?.state == RankState::Ok && eligible(n) {
            return Ok(Some(n));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmpi::{run, run_default, ErrorHandler, Src, UniverseConfig, WORLD};
    use std::time::Duration;

    #[test]
    fn all_alive_elects_rank_zero() {
        let report = run_default(4, |p| current_root(p, WORLD));
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&0));
        }
    }

    #[test]
    fn survivors_agree_on_lowest_alive() {
        let plan = faultsim::FaultPlan::none()
            .kill_at(0, faultsim::HookKind::Tick, 1)
            .kill_at(1, faultsim::HookKind::Tick, 1);
        let report = run(
            5,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(20)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                if p.world_rank() <= 1 {
                    let req = p.irecv(WORLD, Src::Rank(4), 9)?;
                    let _ = p.wait(req)?;
                    return Ok(usize::MAX);
                }
                // Wait until both failures are visible, then elect.
                loop {
                    let s0 = p.comm_validate_rank(WORLD, 0)?.state;
                    let s1 = p.comm_validate_rank(WORLD, 1)?.state;
                    if s0 != RankState::Ok && s1 != RankState::Ok {
                        break;
                    }
                    std::thread::yield_now();
                }
                current_root(p, WORLD)
            },
        );
        for r in 2..5 {
            assert_eq!(report.outcomes[r].as_ok(), Some(&2), "rank {r}");
        }
    }

    #[test]
    fn election_ignores_recognition_state() {
        // A recognized (Null) rank is still failed: never electable.
        let plan = faultsim::FaultPlan::none().kill_at(0, faultsim::HookKind::Tick, 1);
        let report = run(
            3,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(20)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                if p.world_rank() == 0 {
                    let req = p.irecv(WORLD, Src::Rank(1), 9)?;
                    let _ = p.wait(req)?;
                    return Ok(usize::MAX);
                }
                while p.comm_validate_rank(WORLD, 0)?.state == RankState::Ok {
                    std::thread::yield_now();
                }
                p.comm_validate_clear(WORLD, &[0])?;
                current_root(p, WORLD)
            },
        );
        for r in 1..3 {
            assert_eq!(report.outcomes[r].as_ok(), Some(&1), "rank {r}");
        }
    }

    #[test]
    fn elect_with_eligibility_filter() {
        let report = run_default(4, |p| elect(p, WORLD, |r| r >= 2));
        assert!(report.all_ok());
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&Some(2)));
        }
        let report = run_default(2, |p| elect(p, WORLD, |_| false));
        for o in &report.outcomes {
            assert_eq!(o.as_ok(), Some(&None));
        }
    }
}
