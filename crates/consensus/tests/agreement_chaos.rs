//! Chaos property for the coordinator agreement protocol: **uniform
//! agreement** under randomized kill schedules, including coordinator
//! chains dying mid-protocol.

use std::time::Duration;

use proptest::prelude::*;

use consensus::{agree_on_failed_set, AgreementConfig};
use faultsim::{FaultPlan, FaultRule, HookKind, Trigger};
use ftmpi::{run, ErrorHandler, UniverseConfig, WORLD};

#[derive(Debug, Clone, Copy)]
struct Kill {
    victim: usize,
    kind: u8,
    occurrence: u64,
}

fn kill_strategy() -> impl Strategy<Value = Kill> {
    (0usize..7, 0u8..4, 1u64..8).prop_map(|(victim, kind, occurrence)| Kill {
        victim,
        kind,
        occurrence,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        max_shrink_iters: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn agreement_is_uniform_under_chaos(
        world in 3usize..8,
        kills in prop::collection::vec(kill_strategy(), 0..3),
    ) {
        let kills: Vec<Kill> = kills.into_iter().filter(|k| k.victim < world).collect();
        let victims: std::collections::HashSet<usize> =
            kills.iter().map(|k| k.victim).collect();
        prop_assume!(victims.len() < world);

        let mut plan = FaultPlan::none();
        let mut seen = std::collections::HashSet::new();
        for k in &kills {
            if !seen.insert(k.victim) {
                continue;
            }
            let kind = match k.kind {
                0 => HookKind::AfterRecvComplete,
                1 => HookKind::AfterSend,
                2 => HookKind::BeforeSend,
                _ => HookKind::Tick,
            };
            plan = plan.with(FaultRule::kill(k.victim, Trigger::on(kind).nth(k.occurrence)));
        }

        let report = run(
            world,
            UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(120)),
            |p| {
                p.set_errhandler(WORLD, ErrorHandler::ErrorsReturn)?;
                agree_on_failed_set(p, WORLD, AgreementConfig::default())
            },
        );
        prop_assert!(!report.hung, "agreement hung with kills {kills:?}");

        // UNIFORMITY: every survivor decided the same set.
        let decided: Vec<&Vec<usize>> = report
            .outcomes
            .iter()
            .filter_map(|o| o.as_ok())
            .collect();
        prop_assert!(!decided.is_empty(), "at least one survivor decides");
        for d in &decided {
            prop_assert_eq!(
                *d, decided[0],
                "uniform agreement violated (kills {:?}): {:?}",
                kills, decided
            );
        }
        // VALIDITY: the agreed set contains only genuinely failed
        // ranks (strong accuracy of the detector).
        let actually_failed: std::collections::HashSet<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_failed())
            .map(|(r, _)| r)
            .collect();
        for &r in decided[0] {
            prop_assert!(
                actually_failed.contains(&r),
                "agreed on a rank that did not fail: {} (kills {:?})",
                r,
                kills
            );
        }
    }
}
