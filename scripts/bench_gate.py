#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh (quick-mode) BENCH_dst.json
against the committed full-window record and fail when any tracked
series regresses past the tolerance.

Usage:

    scripts/bench_gate.py CURRENT.json BASELINE.json [--tolerance 0.8]

Quick-mode rates are noisy (short measurement windows, shared CI
runners), so the default tolerance is deliberately loose: a series must
fall below ``tolerance x baseline`` — a >20% drop — to fail the gate.
The gate catches cliffs (a lost fast path, an accidental debug build,
a serialization bug in the sweep engine), not percent-level drift; the
committed BENCH_dst.json refreshed on perf PRs is the precise record.

Series whose id starts with ``allocs_per_schedule`` invert the rule:
they record steady-state heap allocations per schedule (DESIGN.md
§8.10), which is *lower*-is-better and deterministic (no measurement
noise), so the bound is tight — the series fails when the current
value exceeds ``alloc-ceiling x baseline`` (default 1.1x). A new
allocation in the simulation hot path moves this immediately; noise
cannot.

Series present in only one file are reported but never fail the gate:
the committed baseline may trail a freshly added series, and a renamed
series should fail review, not CI.

Rates are only comparable on the same seed window (the workload mix
changes with the window — see EXPERIMENTS.md); if both files carry a
``seed_window`` stanza and they disagree, the gate refuses to compare
rather than emitting false verdicts.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench gate: cannot read {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly measured BENCH json (quick mode)")
    ap.add_argument("baseline", help="committed BENCH json (full window)")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="fail a series below tolerance x baseline rate (default 0.8)",
    )
    ap.add_argument(
        "--alloc-ceiling",
        type=float,
        default=1.1,
        help="fail an allocs_per_schedule series above "
        "alloc-ceiling x baseline (default 1.1)",
    )
    args = ap.parse_args()

    cur = load(args.current)
    base = load(args.baseline)

    cur_win = cur.get("seed_window")
    base_win = base.get("seed_window")
    if cur_win is not None and base_win is not None and cur_win != base_win:
        sys.exit(
            f"bench gate: seed windows differ (current {cur_win}, "
            f"baseline {base_win}); rates are not comparable — refresh the "
            f"committed BENCH_dst.json on the new window first"
        )

    cur_results = cur.get("results", {})
    base_results = base.get("results", {})

    failed = []
    for series in sorted(base_results):
        if series not in cur_results:
            print(f"  skip  {series}: not in current run")
            continue
        b = base_results[series]["rate"]
        c = cur_results[series]["rate"]
        ratio = c / b if b > 0 else float("inf")
        if series.startswith("allocs_per_schedule"):
            # Lower-is-better, deterministic: tight ceiling.
            ceiling = args.alloc_ceiling * b
            bad = c > ceiling
            verdict = "FAIL" if bad else "ok"
            print(
                f"  {verdict:>4}  {series}: {c:.1f} vs baseline {b:.1f} "
                f"({ratio:.2f}x, ceiling {ceiling:.1f})"
            )
        else:
            floor = args.tolerance * b
            bad = c < floor
            verdict = "FAIL" if bad else "ok"
            print(
                f"  {verdict:>4}  {series}: {c:.1f} vs baseline {b:.1f} "
                f"({ratio:.2f}x, floor {floor:.1f})"
            )
        if bad:
            failed.append(series)
    for series in sorted(set(cur_results) - set(base_results)):
        print(f"  skip  {series}: not in baseline")

    if failed:
        sys.exit(
            f"bench gate: {len(failed)} series regressed (throughput floor "
            f"{args.tolerance}x, alloc ceiling {args.alloc_ceiling}x): "
            f"{', '.join(failed)}"
        )
    print(f"bench gate: all {len(base_results)} series within tolerance")


if __name__ == "__main__":
    main()
