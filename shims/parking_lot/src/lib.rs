//! Offline shim: the subset of `parking_lot` this workspace uses,
//! implemented over `std::sync`. The build container has no crates.io
//! access, so the real crate cannot be fetched; semantics relied upon
//! here (guard-returning `lock`, `&mut`-guard condvar waits, no
//! poisoning) are preserved. Poisoned std locks are recovered
//! transparently: parking_lot has no poisoning, and the runtime's
//! panic paths (rank unwinds) must not cascade into every other rank.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutex with parking_lot's panic-free, guard-returning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard; derefs to the protected value.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a condvar wait can take the inner guard by value and
    // put the re-acquired one back (std waits consume the guard).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside waits")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside waits")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable taking `&mut MutexGuard`, as parking_lot does.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock after panic must not propagate");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
