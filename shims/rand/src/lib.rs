//! Offline shim: the subset of `rand` 0.9 this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::random_range`, `Rng::random_bool`,
//! and `seq::SliceRandom::shuffle`. The generator is splitmix64 rather
//! than ChaCha12: cryptographic quality is irrelevant here, while
//! seed-determinism (same seed ⇒ same stream, forever) is exactly what
//! the chaos tests and the `dst` harness need, and a tiny local
//! implementation guarantees the stream can never change under us.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types `random_range` can produce. Samples are taken modulo the
/// range width — a negligible bias for the test-scale ranges used here.
pub trait SampleUniform: Copy {
    fn sample_in(lo: Self, hi_inclusive: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                debug_assert!(lo <= hi);
                let width = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(width);
                ((lo as i128) + v) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Ranges `random_range` accepts.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + num_step::One> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, num_step::one_less(self.end), rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, rng)
    }
}

mod num_step {
    /// Integer predecessor, used to convert `a..b` into `a..=b-1`.
    pub trait One: Copy {
        fn pred(self) -> Self;
    }
    macro_rules! impl_one {
        ($($ty:ty),*) => {$(
            impl One for $ty {
                fn pred(self) -> Self { self - 1 }
            }
        )*};
    }
    impl_one!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    pub fn one_less<T: One>(v: T) -> T {
        v.pred()
    }
}

/// High-level sampling methods (the used subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53-bit uniform in [0,1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: splitmix64.
    ///
    /// Not the real crate's ChaCha12 — see the crate docs for why that
    /// is acceptable (and desirable) here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: u64 = rng.random_range(1..=1);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
