//! Offline shim: the subset of the `bytes` crate this workspace uses.
//! `Bytes` is a cheaply-clonable immutable byte buffer; `BytesMut` is a
//! growable builder that freezes into one. Like the real crate,
//! sub-slicing is zero-copy: a `Bytes` is a view `(Arc<[u8]>, range)`
//! into a shared allocation, so `slice()` and `clone()` never touch the
//! heap. Two shim-only extensions ([`Bytes::from_arc_prefix`],
//! [`Bytes::into_arc`]) expose the backing allocation so `ftmpi`'s
//! payload pool can recycle buffers across messages (DESIGN.md §8.10).

use std::sync::{Arc, OnceLock};

/// The one empty backing allocation every empty `Bytes` shares.
/// `Arc<[u8]>` always heap-allocates its header, even for zero bytes —
/// and empty payloads are minted on every failure notification
/// (`Completion { data: Bytes::new() }`), so this would otherwise be a
/// steady-state allocation per simulated failure event.
fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// Cheaply-clonable immutable byte buffer: a range view into a shared
/// allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        let data = empty_arc();
        Bytes { data, start: 0, end: 0 }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Bytes::new();
        }
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Sub-range as a new view of the same allocation — zero-copy,
    /// like the real crate. Panics when the range is out of bounds,
    /// matching slice-indexing semantics.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes { data: self.data.clone(), start: self.start + start, end: self.start + end }
    }

    /// Shim extension: view the first `len` bytes of a shared
    /// allocation without copying. The payload pool writes into a
    /// uniquely-held class buffer (via [`Arc::get_mut`]) and hands it
    /// out through this constructor.
    pub fn from_arc_prefix(data: Arc<[u8]>, len: usize) -> Bytes {
        assert!(len <= data.len(), "prefix {len} longer than the allocation {}", data.len());
        Bytes { data, start: 0, end: len }
    }

    /// Shim extension: surrender this view's backing allocation. The
    /// payload pool recycles it when it turns out to be the last
    /// handle (`Arc::get_mut` succeeds); otherwise the clone dropped
    /// here just decrements the refcount.
    pub fn into_arc(self) -> Arc<[u8]> {
        self.data
    }

    /// Shim extension: strong count of the backing allocation —
    /// `1` means no other `Bytes` (or pool handle) can observe it.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

// Comparisons, ordering and hashing see the *visible* bytes, never the
// backing allocation: two views are equal iff their slices are (the
// derive on the old `Arc<[u8]>` representation compared contents too,
// so this preserves observable behaviour).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Empty the buffer, keeping its capacity — the reuse hook the
    /// encode scratch in `ftmpi::Process` leans on.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Write-side trait (the subset of methods the workspace uses).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_bytes_mut() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clones_share_storage() {
        let a: Bytes = vec![9u8; 64].into();
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone must not copy");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\xff");
        assert_eq!(format!("{b:?}"), "b\"a\\xff\"");
    }

    #[test]
    fn slice_is_zero_copy() {
        let a: Bytes = (0u8..32).collect::<Vec<_>>().into();
        let s = a.slice(4..12);
        assert_eq!(&s[..], &(4u8..12).collect::<Vec<_>>()[..]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(4) }, "slice must share the allocation");
        // Slices of slices compose.
        let ss = s.slice(2..=3);
        assert_eq!(&ss[..], &[6, 7]);
        assert_eq!(ss.as_ptr(), unsafe { a.as_ptr().add(6) });
        // Open-ended ranges.
        assert_eq!(&a.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(a.slice(30..).len(), 2);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let a: Bytes = vec![0u8; 4].into();
        let _ = a.slice(2..9);
    }

    #[test]
    fn comparisons_see_the_view_not_the_allocation() {
        let a: Bytes = vec![1u8, 2, 3, 4].into();
        let b: Bytes = vec![0u8, 1, 2, 3, 4, 5].into();
        assert_eq!(a, b.slice(1..5));
        assert_ne!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |x: &Bytes| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b.slice(1..5)));
    }

    #[test]
    fn empty_bytes_share_one_allocation() {
        let a = Bytes::new();
        let b = Bytes::default();
        let c = Bytes::copy_from_slice(&[]);
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a.as_ptr(), c.as_ptr());
    }

    #[test]
    fn arc_prefix_round_trip() {
        let arc: Arc<[u8]> = Arc::from(&[7u8; 16][..]);
        let b = Bytes::from_arc_prefix(arc.clone(), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[7u8; 5][..]);
        assert_eq!(b.ref_count(), 2);
        drop(arc);
        assert_eq!(b.ref_count(), 1);
        let back = b.into_arc();
        assert_eq!(back.len(), 16, "into_arc returns the full allocation");
    }
}
