//! Offline shim: the subset of the `bytes` crate this workspace uses.
//! `Bytes` is a cheaply-clonable immutable byte buffer; `BytesMut` is a
//! growable builder that freezes into one. Zero-copy sub-slicing is not
//! reproduced (nothing here relies on it) — clones share the same
//! allocation via `Arc`, which is the property the transport needs.

use std::sync::Arc;

/// Cheaply-clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Sub-range as a new buffer. The real crate is zero-copy here;
    /// this shim copies, which nothing in the workspace depends on.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Write-side trait (the subset of methods the workspace uses).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_bytes_mut() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clones_share_storage() {
        let a: Bytes = vec![9u8; 64].into();
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone must not copy");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\xff");
        assert_eq!(format!("{b:?}"), "b\"a\\xff\"");
    }
}
