//! Per-thread heap-allocation counters behind a wrapping global
//! allocator.
//!
//! [`StatsAlloc`] forwards every call to [`std::alloc::System`] and
//! bumps four thread-local counters: allocations, deallocations, bytes
//! allocated, bytes freed. Installing it is the *consumer's* choice:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: allocstats::StatsAlloc = allocstats::StatsAlloc;
//! ```
//!
//! Code that only *reads* the counters ([`snapshot`] /
//! [`AllocStats::since`]) works in any binary: without the allocator
//! installed the counters simply stay zero, so instrumentation can be
//! threaded through a library unconditionally and lights up wherever a
//! final binary opts in (the `dst` crate does; see DESIGN.md §8.10).
//!
//! The counters are thread-local on purpose — attribution, not
//! accounting. A schedule executed across N rank threads is measured
//! by snapshotting each thread around its own slice of the work and
//! summing the deltas, which needs no synchronization on the allocation
//! hot path: the counters are plain `Cell`s, const-initialized so the
//! first allocation on a fresh thread cannot recurse into lazy TLS
//! setup, and never dropped (no TLS destructor ordering hazards).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES_ALLOC: Cell<u64> = const { Cell::new(0) };
    static BYTES_FREED: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>, by: u64) {
    // `try_with`: during thread teardown TLS may already be gone; the
    // allocator must keep working (uncounted) rather than panic.
    let _ = cell.try_with(|c| c.set(c.get().wrapping_add(by)));
}

/// A [`GlobalAlloc`] that counts into thread-local counters and
/// delegates to [`System`].
pub struct StatsAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds
// the GlobalAlloc contract; the counter bumps touch only plain `Cell`s
// and never allocate, so there is no reentrancy.
unsafe impl GlobalAlloc for StatsAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(&ALLOCS, 1);
            bump(&BYTES_ALLOC, layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        bump(&DEALLOCS, 1);
        bump(&BYTES_FREED, layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            bump(&ALLOCS, 1);
            bump(&BYTES_ALLOC, layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A realloc is one free + one alloc for counting purposes
            // (grow-in-place still pays a counter bump; the counters
            // measure allocator traffic, not page movement).
            bump(&ALLOCS, 1);
            bump(&BYTES_ALLOC, new_size as u64);
            bump(&DEALLOCS, 1);
            bump(&BYTES_FREED, layout.size() as u64);
        }
        p
    }
}

/// A snapshot of (or delta between) the calling thread's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Heap deallocations (including the free half of reallocs).
    pub deallocs: u64,
    /// Bytes requested across all allocations.
    pub bytes_alloc: u64,
    /// Bytes returned across all deallocations.
    pub bytes_freed: u64,
}

impl AllocStats {
    /// The delta from `earlier` to `self` (both taken on the same
    /// thread, `earlier` first). Wrapping, like the counters.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            deallocs: self.deallocs.wrapping_sub(earlier.deallocs),
            bytes_alloc: self.bytes_alloc.wrapping_sub(earlier.bytes_alloc),
            bytes_freed: self.bytes_freed.wrapping_sub(earlier.bytes_freed),
        }
    }

    /// Accumulate another delta into this one (summing per-thread
    /// deltas into a per-schedule or per-sweep total).
    pub fn add(&mut self, other: &AllocStats) {
        self.allocs = self.allocs.wrapping_add(other.allocs);
        self.deallocs = self.deallocs.wrapping_add(other.deallocs);
        self.bytes_alloc = self.bytes_alloc.wrapping_add(other.bytes_alloc);
        self.bytes_freed = self.bytes_freed.wrapping_add(other.bytes_freed);
    }

    /// True when no counter moved — either genuinely allocation-free,
    /// or [`StatsAlloc`] is not the installed global allocator.
    pub fn is_zero(&self) -> bool {
        *self == AllocStats::default()
    }
}

/// Read the calling thread's counters.
pub fn snapshot() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.with(Cell::get),
        deallocs: DEALLOCS.with(Cell::get),
        bytes_alloc: BYTES_ALLOC.with(Cell::get),
        bytes_freed: BYTES_FREED.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shim's own test binary does not install the allocator (that
    // would force counting overhead on every crate that merely links
    // the lib); arithmetic is tested directly, live counting is pinned
    // by the consumer (`crates/dst/tests/alloc_ceiling.rs`).

    #[test]
    fn since_and_add_are_inverse_ish() {
        let a = AllocStats { allocs: 10, deallocs: 4, bytes_alloc: 640, bytes_freed: 128 };
        let b = AllocStats { allocs: 25, deallocs: 19, bytes_alloc: 1664, bytes_freed: 1152 };
        let d = b.since(&a);
        assert_eq!(d, AllocStats { allocs: 15, deallocs: 15, bytes_alloc: 1024, bytes_freed: 1024 });
        let mut sum = a;
        sum.add(&d);
        assert_eq!(sum, b);
    }

    #[test]
    fn snapshot_without_installation_is_stable() {
        let before = snapshot();
        let v: Vec<u64> = (0..64).collect();
        drop(v);
        let after = snapshot();
        // Not installed in this test binary: counters cannot move.
        assert_eq!(after.since(&before), AllocStats::default());
        assert!(after.since(&before).is_zero());
    }

    #[test]
    fn zero_detection() {
        assert!(AllocStats::default().is_zero());
        assert!(!AllocStats { allocs: 1, ..Default::default() }.is_zero());
    }
}
