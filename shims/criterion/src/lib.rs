//! Offline shim: the subset of `criterion` this workspace's benches
//! use. No statistics, plots or baselines — each benchmark runs a
//! brief warm-up, then measures `sample_size` samples (bounded by
//! `measurement_time`) and prints min/mean timings to stdout. The
//! point is that `cargo bench` builds and produces comparable numbers
//! in a container with no crates.io access.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Quick mode (`cargo bench -- --quick`): clamp sampling so a whole
/// bench target finishes in seconds — the CI smoke-run setting. Gross
/// regressions still show; fine-grained comparisons need a full run.
static QUICK: AtomicBool = AtomicBool::new(false);

/// Whether `--quick` was requested.
pub fn quick_mode() -> bool {
    QUICK.load(Ordering::Relaxed)
}

/// Parse the CLI arguments cargo forwards after `--`. Recognizes
/// `--quick`; everything else (e.g. harness filters this shim does not
/// implement) is ignored, matching the real crate's tolerance.
pub fn init_from_args(args: impl Iterator<Item = String>) {
    for a in args {
        if a == "--quick" {
            QUICK.store(true, Ordering::Relaxed);
        }
    }
}

/// Sampling caps applied in quick mode.
const QUICK_SAMPLES: usize = 3;
const QUICK_WARM_UP: Duration = Duration::from_millis(50);
const QUICK_MEASURE: Duration = Duration::from_millis(500);

/// Identifier for one benchmark within a group: `function_name/param`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Work performed per sample, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each sample processes this many items.
    Elements(u64),
    /// Each sample processes this many bytes.
    Bytes(u64),
}

/// Runs the closure under measurement. One `iter` call per sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let _ = &self.criterion; // reserved for global config
        let (samples, warm_up, measure) = if quick_mode() {
            (
                self.sample_size.min(QUICK_SAMPLES),
                self.warm_up_time.min(QUICK_WARM_UP),
                self.measurement_time.min(QUICK_MEASURE),
            )
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };
        let mut b = Bencher { samples: Vec::with_capacity(samples + 1) };

        // Warm-up: at least one run, then keep going until the warm-up
        // budget is spent.
        let warm_start = Instant::now();
        loop {
            f(&mut b);
            if warm_start.elapsed() >= warm_up {
                break;
            }
        }
        b.samples.clear();

        let measure_start = Instant::now();
        while b.samples.len() < samples {
            f(&mut b);
            // Respect the time budget once at least one sample exists.
            if measure_start.elapsed() >= measure && !b.samples.is_empty() {
                break;
            }
        }

        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let mean = total / n as u32;
        let rate = self.throughput.map(|t| {
            let (per_sample, unit) = match t {
                Throughput::Elements(e) => (e as f64, "elem/s"),
                Throughput::Bytes(by) => (by as f64, "B/s"),
            };
            format!(", {:.1} {}", per_sample / mean.as_secs_f64(), unit)
        });
        println!(
            "{}/{}: mean {:?}, min {:?} ({} samples{})",
            self.name,
            id,
            mean,
            min,
            b.samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args(::std::env::args().skip(1));
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_parses_and_unknown_args_are_ignored() {
        init_from_args(["--bench".to_string(), "somefilter".to_string()].into_iter());
        // note: cannot assert it is *unset* here — tests share the
        // process-global — only that unknown args alone never set it
        // and that --quick does.
        init_from_args(["--quick".to_string()].into_iter());
        assert!(quick_mode());
    }

    #[test]
    fn group_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(200));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u32, |b, &two| {
            b.iter(|| {
                runs += 1;
                two * 2
            })
        });
        group.finish();
        assert!(runs >= 3, "warm-up plus three samples, got {runs}");
    }
}
