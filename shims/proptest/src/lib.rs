//! Offline shim: the subset of `proptest` this workspace uses. Random
//! cases are generated from a seed derived from the test name, so every
//! run explores the same inputs (reproducible CI). Shrinking is not
//! implemented — `max_shrink_iters` is accepted and ignored; a failing
//! case prints its exact inputs instead, which together with the
//! deterministic seeding is enough to reproduce and debug.

pub mod test_runner {
    /// Error a test case returns: a real failure or a rejected sample
    /// (`prop_assume!` not satisfied — resampled, not counted).
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The subset of proptest's config the workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for API compatibility; this shim does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 1024 }
        }
    }

    /// Deterministic splitmix64 stream used to generate case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name so each test has a stable but
        /// distinct input sequence; `attempt` covers both the case
        /// index and resampling after rejects.
        pub fn for_case(test_name: &str, attempt: u64) -> Self {
            // FNV-1a over the name, then mix in the attempt.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Abort after this many consecutive rejects for one case slot:
    /// the assumption is unsatisfiable in practice.
    pub const MAX_REJECTS_PER_CASE: u64 = 4096;
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy: Sized {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128) - (self.start as i128);
                    let v = (rng.next_u64() as i128).rem_euclid(width);
                    ((self.start as i128) + v) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width = (hi as i128) - (lo as i128) + 1;
                    let v = (rng.next_u64() as i128).rem_euclid(width);
                    ((lo as i128) + v) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Uniform choice among type-erased alternatives — the engine
    /// behind [`crate::prop_oneof!`]. The real crate supports weighted
    /// arms; this workspace only uses the unweighted form.
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Raw-bit floats: covers NaN, infinities and subnormals, which is
    // more adversarial than the real crate's default — callers that
    // care (datatype round-trips) already handle NaN explicitly.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OfStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(inner)`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `{:?}` == `{:?}`", l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut case: u32 = 0;
                let mut attempt: u64 = 0;
                let mut rejects: u64 = 0;
                while case < config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), attempt);
                    attempt += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {
                            case += 1;
                            rejects = 0;
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Reject(why))) => {
                            rejects += 1;
                            if rejects > $crate::test_runner::MAX_REJECTS_PER_CASE {
                                panic!(
                                    "proptest {}: too many rejected samples ({}): {}",
                                    stringify!($name),
                                    rejects,
                                    why
                                );
                            }
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                            panic!(
                                "proptest {} failed at case {}.\n  inputs: {}\n  {}",
                                stringify!($name),
                                case,
                                inputs,
                                msg
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest {} panicked at case {}.\n  inputs: {}",
                                stringify!($name),
                                case,
                                inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec((0i32..5, any::<u32>()), 1..9);
        let a = strat.generate(&mut TestRng::for_case("x", 3));
        let b = strat.generate(&mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            v in (0usize..7, 1u64..8).prop_map(|(a, b)| a as u64 + b),
            opt in crate::option::of(0i32..3),
            xs in crate::collection::vec(0u8..10, 2..6),
        ) {
            prop_assert!(v < 15, "v out of bounds: {v}");
            if let Some(o) = opt {
                prop_assert!((0..3).contains(&o));
            }
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 10).count(), 0);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0, "assume should have filtered {}", a);
        }
    }
}
