//! Domain application: fault-tolerant manager/worker task farm (the
//! Gropp & Lusk pattern from the paper's §IV related work, rebuilt on
//! run-through stabilization semantics).
//!
//! ```text
//! cargo run --example task_farm
//! ```

use std::time::Duration;

use ftmpi::{faultsim, run, UniverseConfig, WORLD};
use ftring::apps::{expected_results, run_farm, FarmOutcome};

fn main() {
    let ranks = 5; // 1 manager + 4 workers
    let tasks: Vec<u64> = (0..40u64).map(|i| i * 13 + 7).collect();

    // Two workers die mid-run: worker 2 holding a task (it must be
    // re-queued), worker 4 right after a reply.
    let plan = faultsim::FaultPlan::none()
        .with(faultsim::FaultRule::kill(
            2,
            faultsim::Trigger::on(faultsim::HookKind::AfterRecvComplete).tag(21).nth(3),
        ))
        .with(faultsim::FaultRule::kill(
            4,
            faultsim::Trigger::on(faultsim::HookKind::AfterSend).tag(22).nth(4),
        ));

    println!("task farm: {ranks} ranks, {} tasks, workers 2 and 4 die mid-run\n", tasks.len());

    let expect = expected_results(&tasks);
    let t = tasks.clone();
    let report = run(
        ranks,
        UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(60)),
        move |p| run_farm(p, WORLD, &t),
    );
    assert!(!report.hung);

    for (r, o) in report.outcomes.iter().enumerate() {
        match o.as_ok() {
            Some(FarmOutcome::Manager(m)) => {
                println!(
                    "manager (rank {r}): {} results, {} re-queued, lost workers {:?}, {} computed locally",
                    m.results.len(),
                    m.requeued,
                    m.workers_lost,
                    m.computed_locally
                );
                assert_eq!(m.results, expect, "every task exactly once, values exact");
            }
            Some(FarmOutcome::Worker(w)) => {
                println!("worker  (rank {r}): {} tasks done", w.tasks_done);
            }
            None => println!("worker  (rank {r}): FAILED (fail-stop injected)"),
        }
    }
    println!("\nOK: every task completed exactly once despite two worker deaths.");
}
