//! A guided tour of the paper's four failure scenarios (Figs. 6, 7, 8
//! and 10), each run live with exact fault injection.
//!
//! ```text
//! cargo run --example fault_scenarios
//! ```

use std::time::Duration;

use ftmpi::{faultsim::scenario, run, UniverseConfig, WORLD};
use ftring::{
    render_sequence_diagram, run_ring, summarize, DiagramOptions, RingConfig, RingRunSummary, T_N,
};

const RANKS: usize = 4;
const ITER: u64 = 6;

fn execute(name: &str, cfg: RingConfig, plan: faultsim::FaultPlan, watchdog: Duration) -> RingRunSummary {
    println!("=== {name} ===");
    let cfg2 = cfg.clone();
    let report = run(
        RANKS,
        UniverseConfig::with_plan(plan).watchdog(watchdog),
        move |p| run_ring(p, WORLD, &cfg2),
    );
    let s = summarize(&report);
    println!(
        "  hung={} survivors={:?} failed={:?}",
        s.hung, s.survivors, s.failed
    );
    println!(
        "  laps closed={} resends={} detector_fires={} dup_dropped={} dup_forwarded={}",
        s.completed_iterations(),
        s.total_resends,
        s.total_detector_fires,
        s.total_duplicates_dropped,
        s.total_duplicate_forwards,
    );
    println!("  closures: {:?}\n", s.closures);
    s
}

use ftmpi::faultsim;

fn main() {
    // Fig. 6: naive receive; P2 dies holding the token -> hang.
    let s = execute(
        "Fig. 6 — naive FT_Recv_left, token dies with P2 (expected: HANG)",
        RingConfig::naive(ITER),
        scenario::kill_after_recv(2, 1, T_N, 2),
        Duration::from_secs(3), // short watchdog: we *expect* the hang
    );
    assert!(s.hung, "Fig. 6 must hang");
    println!("  => the program hung, exactly as Fig. 6 describes.\n");

    // Fig. 7: same fault, Fig. 9 receive -> P1 resends, ring heals.
    let s = execute(
        "Fig. 7 — Irecv-as-failure-detector, same fault (expected: recovery)",
        RingConfig::paper(ITER),
        scenario::kill_after_recv(2, 1, T_N, 2),
        Duration::from_secs(60),
    );
    assert!(!s.hung && s.completed_iterations() == ITER as usize);
    println!("  => P1 noticed the failure and resent; all laps completed.\n");

    // Fig. 8: detector receive, NO duplicate control; P2 dies after
    // forwarding -> the same lap completes twice.
    let s = execute(
        "Fig. 8 — no duplicate control, P2 dies after forwarding (expected: double completion)",
        RingConfig::no_dedup(ITER),
        scenario::kill_behind_token(2, 0, T_N, 2),
        Duration::from_secs(60),
    );
    assert!(s.has_double_completion() || s.total_duplicate_forwards > 0);
    println!("  => a lap completed twice: the Fig. 8 defect.\n");

    // Fig. 10: same fault, iteration marker -> duplicate discarded.
    let s = execute(
        "Fig. 10 — iteration marker, same fault (expected: exact run)",
        RingConfig::paper(ITER),
        scenario::kill_behind_token(2, 0, T_N, 2),
        Duration::from_secs(60),
    );
    assert!(!s.has_double_completion() && s.completed_iterations() == ITER as usize);
    assert!(s.total_duplicates_dropped >= 1);
    println!("  => the resent duplicate was detected by its marker and dropped.\n");

    // Bonus: render the actual message diagram of a short Fig. 7 run,
    // in the visual language of the paper's figures.
    let cfg = RingConfig::paper(3);
    let report = run(
        RANKS,
        UniverseConfig::with_plan(scenario::kill_after_recv(2, 1, T_N, 2))
            .watchdog(Duration::from_secs(60))
            .traced(),
        move |p| run_ring(p, WORLD, &cfg),
    );
    println!("=== recorded message diagram of the Fig. 7 run ===\n");
    println!("{}", render_sequence_diagram(&report.trace, RANKS, &DiagramOptions::default()));

    println!("All four scenarios reproduced the paper's figures.");
}
