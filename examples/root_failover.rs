//! §III-D live: the root dies mid-run, the lowest survivor elects
//! itself (Fig. 12), reconstructs the ring state, and the run
//! terminates through `icomm_validate_all` (Fig. 13).
//!
//! ```text
//! cargo run --example root_failover
//! ```

use std::time::Duration;

use ftmpi::{faultsim::scenario, run, UniverseConfig, WORLD};
use ftring::{run_ring, summarize, RingConfig, T_N};

fn main() {
    let ranks = 6;
    let iterations = 8;

    // The root (rank 0) dies after closing its 3rd lap.
    let plan = scenario::kill_after_recv(0, ranks - 1, T_N, 3);
    let cfg = RingConfig::with_root_failover(iterations);

    println!("ring: {ranks} ranks x {iterations} laps; the ROOT dies after lap 3");
    println!("config: {cfg:?}\n");

    let report = run(
        ranks,
        UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(60)),
        move |p| run_ring(p, WORLD, &cfg),
    );
    let s = summarize(&report);

    println!("hung:      {}", s.hung);
    println!("failed:    {:?}", s.failed);
    println!("survivors: {:?}", s.survivors);
    for &r in &s.survivors {
        let stats = report.outcomes[r].as_ok().unwrap();
        println!(
            "  rank {r}: became_root={} originated={} forwarded={} closures={:?} agreed_failed={:?}",
            stats.became_root,
            stats.originated,
            stats.forwarded,
            stats.closures,
            stats.validate_failed,
        );
    }

    assert!(!s.hung, "failover must prevent the hang");
    assert_eq!(s.total_originated, iterations, "every lap originated exactly once");
    let new_root = report.outcomes[1].as_ok().unwrap();
    assert!(new_root.became_root, "rank 1 must take over");
    println!(
        "\nOK: rank 1 took over as root, originated the remaining laps, and every \
         survivor agreed on {} failure(s) at termination.",
        s.failed.len()
    );
}
