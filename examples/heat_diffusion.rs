//! Domain application: 1-D heat diffusion with run-through halo
//! exchange — the neighbour-communication pattern of the ring on a
//! physical workload (the paper's §IV cites heat-transfer codes as an
//! ABFT domain).
//!
//! ```text
//! cargo run --example heat_diffusion
//! ```

use std::time::Duration;

use ftmpi::{faultsim, run, UniverseConfig, WORLD};
use ftring::apps::{run_heat, serial_reference, HeatConfig};

fn main() {
    let ranks = 6;
    let cfg = HeatConfig { cells_per_rank: 16, steps: 120, ..Default::default() };

    // First: failure-free, checked against the serial reference.
    let cfg1 = cfg.clone();
    let report = run(ranks, UniverseConfig::default().watchdog(Duration::from_secs(60)), move |p| {
        run_heat(p, WORLD, &cfg1)
    });
    assert!(report.all_ok());
    let reference = serial_reference(ranks, &cfg);
    let mut max_err: f64 = 0.0;
    for (rank, o) in report.outcomes.iter().enumerate() {
        let res = o.as_ok().unwrap();
        for (i, &v) in res.cells.iter().enumerate() {
            max_err = max_err.max((v - reference[rank * cfg.cells_per_rank + i]).abs());
        }
    }
    println!("failure-free: max |parallel - serial| = {max_err:.3e} (must be ~0)");
    assert!(max_err < 1e-9);

    // Second: rank 2 dies a third of the way in; survivors re-knit the
    // rod and run through.
    let plan = faultsim::FaultPlan::none().kill_at(
        2,
        faultsim::HookKind::AfterRecvComplete,
        (cfg.steps / 3) as u64,
    );
    let cfg2 = cfg.clone();
    let report = run(
        ranks,
        UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(120)),
        move |p| run_heat(p, WORLD, &cfg2),
    );
    assert!(!report.hung, "halo exchange must run through the failure");
    println!("\nwith rank 2 killed at step {}:", cfg.steps / 3);
    for (rank, o) in report.outcomes.iter().enumerate() {
        match o.as_ok() {
            Some(res) => println!(
                "  rank {rank}: steps={} fallbacks={} switches={} mean_T={:.4}",
                res.steps,
                res.halo_fallbacks,
                res.neighbor_switches,
                res.cells.iter().sum::<f64>() / res.cells.len() as f64
            ),
            None => println!("  rank {rank}: FAILED (fail-stop injected)"),
        }
    }
    let survivors = report.outcomes.iter().filter(|o| o.is_ok()).count();
    println!(
        "\nOK: {survivors}/{ranks} ranks completed all {} steps around the failure \
         (natural fault tolerance: approximate answer instead of a lost job).",
        cfg.steps
    );
}
