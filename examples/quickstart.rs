//! Quickstart: a fault-tolerant ring surviving a mid-run failure.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Runs the paper's headline configuration (Fig. 3: detector receive,
//! iteration-marker duplicate control, root-broadcast termination) on
//! an 8-rank ring, kills rank 3 while it holds the iteration token,
//! and prints what happened.

use std::time::Duration;

use ftmpi::{faultsim, run, UniverseConfig, WORLD};
use ftring::{run_ring, summarize, RingConfig, T_N};

fn main() {
    let ranks = 8;
    let iterations = 10;

    // Fault plan: rank 3 dies after consuming its 4th ring token —
    // i.e. while it *holds* iteration 3's token, the nastiest spot
    // (paper Fig. 6/7).
    let plan = faultsim::scenario::kill_after_recv(3, 2, T_N, 4);

    let cfg = RingConfig::paper(iterations);
    println!("ring: {ranks} ranks x {iterations} iterations, killing rank 3 mid-token");
    println!("config: {cfg:?}\n");

    let report = run(
        ranks,
        UniverseConfig::with_plan(plan).watchdog(Duration::from_secs(60)),
        move |p| run_ring(p, WORLD, &cfg),
    );
    let s = summarize(&report);

    println!("hung:       {}", s.hung);
    println!("survivors:  {:?}", s.survivors);
    println!("failed:     {:?}", s.failed);
    println!("laps closed at the root (marker, value):");
    for (m, v) in &s.closures {
        println!("  lap {m:>2}: value {v} ({} participants)", v);
    }
    println!("resends:          {}", s.total_resends);
    println!("detector fires:   {}", s.total_detector_fires);
    println!("duplicates dropped: {}", s.total_duplicates_dropped);

    assert!(!s.hung, "the FT ring must run through the failure");
    assert_eq!(s.completed_iterations(), iterations as usize);
    println!("\nOK: all {iterations} iterations completed despite the failure.");
}
