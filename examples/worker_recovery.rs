//! The recovery extension, live: a crash-looping worker is respawned
//! (generation 1, then 2) and rejoins the task farm each time.
//!
//! The paper stops at run-through stabilization ("Process recovery is
//! not addressed in this paper") but defines the `generation` field
//! for exactly this; the proposal it builds on "is being extended to
//! include flexible recovery strategies". This example demonstrates
//! the extension on the application class where recovery is natural
//! (the §IV manager/worker pattern).
//!
//! ```text
//! cargo run --example worker_recovery
//! ```

use std::time::Duration;

use ftmpi::{faultsim, run, RespawnPolicy, UniverseConfig, WORLD};
use ftring::apps::{expected_results, run_farm, FarmOutcome};

fn main() {
    let ranks = 3; // manager + 2 workers
    let tasks: Vec<u64> = (0..600u64).map(|i| i * 11 + 5).collect();

    // Worker 2 dies on its 3rd and on its 10th task receive —
    // a crash loop with two recoveries.
    let plan = faultsim::FaultPlan::none()
        .with(faultsim::FaultRule::kill(
            2,
            faultsim::Trigger::on(faultsim::HookKind::AfterRecvComplete).tag(21).nth(3),
        ))
        .with(faultsim::FaultRule::kill(
            2,
            faultsim::Trigger::on(faultsim::HookKind::AfterRecvComplete).tag(21).nth(10),
        ));

    println!(
        "task farm: {ranks} ranks, {} tasks; worker 2 crash-loops (2 deaths, budget 2)\n",
        tasks.len()
    );

    let expect = expected_results(&tasks);
    let t = tasks.clone();
    let report = run(
        ranks,
        UniverseConfig::with_plan(plan)
            .watchdog(Duration::from_secs(120))
            .respawning(RespawnPolicy { after: Duration::from_millis(2), max_per_rank: 2 }),
        move |p| run_farm(p, WORLD, &t),
    );
    assert!(!report.hung);

    println!("final generations per rank: {:?}", report.generations);
    for (r, o) in report.outcomes.iter().enumerate() {
        match o.as_ok() {
            Some(FarmOutcome::Manager(m)) => {
                println!(
                    "manager (rank {r}): {} results, {} re-queued after deaths, losses seen {:?}",
                    m.results.len(),
                    m.requeued,
                    m.workers_lost
                );
                assert_eq!(m.results, expect, "every task exactly once across recoveries");
            }
            Some(FarmOutcome::Worker(w)) => {
                println!(
                    "worker  (rank {r}, generation {}): {} tasks done by the final incarnation",
                    report.generations[r], w.tasks_done
                );
            }
            None => println!("worker  (rank {r}): dead"),
        }
    }
    assert_eq!(report.generations[2], 2, "two recoveries happened");
    println!(
        "\nOK: worker 2 was respawned twice (generations 1 and 2), rejoined the farm\n\
         each time, and the result set is exact — the run-through semantics of the\n\
         paper extended with the proposal's recovery direction."
    );
}
